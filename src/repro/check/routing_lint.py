"""Forwarding-table lint (``RTE0xx``).

All passes read the :class:`~repro.fabric.lft.ForwardingTables` of the
context; none mutate it.  The heavy passes walk every (src, dst) pair
through the tables with the vectorised path walker, so even the
all-pairs checks stay a few NumPy calls:

* ``RTE001``/``RTE002`` reachability (dead ends, loops),
* ``RTE010`` up*/down* shape (no valleys) -- segmented-scan over the
  all-pairs link walk,
* ``RTE020`` channel-dependency-graph cycles (deadlock), reusing
  :func:`repro.routing.deadlock.find_cycle`,
* ``RTE030`` D-Mod-K conformance against the closed form of eq. (1),
* ``RTE040`` theorem-2 down-port destination counts,
* ``RTE041`` up-port destination balance,
* ``RTE050`` non-minimal entries vs BFS distances.

Artifacts published: ``hops`` (the hop matrix), ``cdg_dependencies``
(count), ``down_port_counts``, ``theorem2_violations``,
``up_balance_worst``, ``non_minimal_entries``, ``unreachable_entries``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.hsd import down_port_destination_counts, walk_flow_links
from ..routing.deadlock import channel_dependencies, find_cycle
from ..fabric.lft import ForwardingTables
from ..routing.minhop import bfs_distances
from .common import link_loc as _link_loc
from .common import sample_pairs
from .diagnostics import Diagnostic, DiagnosticReport, Loc
from .passes import CheckContext, CheckPass

__all__ = [
    "ReachabilityPass",
    "UpDownPass",
    "CdgCyclePass",
    "DmodkConformancePass",
    "DownPortBalancePass",
    "UpPortBalancePass",
    "MinimalityPass",
    "sample_pairs",
]


class ReachabilityPass(CheckPass):
    """RTE001 dead ends / RTE002 loops, from the all-pairs hop matrix."""

    name = "reachability"
    needs_tables = True

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        tables = ctx.tables
        fab = ctx.fabric
        hops = tables.paths_matrix()
        ctx.artifacts["hops"] = hops
        bad = np.argwhere(hops < 0)
        for s, d in bad.tolist():
            code, msg = self._classify(tables, int(s), int(d))
            report.add(Diagnostic(code=code, message=msg,
                                  loc=Loc(lid=int(d))))

    @staticmethod
    def _classify(tables: ForwardingTables, src: int,
                  dst: int) -> tuple[str, str]:
        """Re-trace one failing pair scalar-ly to name the failure."""
        fab = tables.fabric
        limit = 2 * (int(fab.node_level.max()) + 1) + 2
        cur = int(fab.peer_node[int(tables.host_out_port(src, dst))])
        for _ in range(limit):
            if cur == dst:
                break
            if cur < 0:
                return "RTE001", (
                    f"route {src}->{dst} walks into a dead cable"
                    " (stale tables on a degraded fabric?)")
            gp = int(tables.out_port(cur, dst))
            if gp < 0:
                return "RTE001", (
                    f"route {src}->{dst} dead-ends at {fab.node_names[cur]}"
                    " (-1 LFT entry)")
            cur = int(fab.peer_node[gp])
        else:
            return "RTE002", (
                f"route {src}->{dst} exceeds {limit} hops without arriving"
                " (forwarding loop)")
        return "RTE001", f"route {src}->{dst} failed"   # pragma: no cover


class UpDownPass(CheckPass):
    """RTE010: every route must ascend then descend (no valleys).

    Implemented as a segmented scan over the vectorised all-pairs link
    walk: a hop that increases the level after any earlier decrease
    within the same flow is a violation.
    """

    name = "up-down"
    needs_tables = True

    def __init__(self, sample: int | None = 250_000, seed: int = 0,
                 strict: bool = False) -> None:
        self.sample = sample
        self.seed = seed
        self.strict = strict

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        tables = ctx.tables
        fab = ctx.fabric
        src, dst = sample_pairs(fab.num_endports, self.sample, self.seed)
        try:
            flow_idx, gports = walk_flow_links(tables, src, dst)
        except ValueError:
            if self.strict:
                raise
            return  # reachability pass owns broken walks
        if not len(flow_idx):
            return
        order = np.lexsort((np.arange(len(flow_idx)), flow_idx))
        f = flow_idx[order]
        g = gports[order]
        lvl = fab.node_level
        lvl_from = lvl[fab.port_owner[g]]
        lvl_to = lvl[fab.peer_node[g]]
        down = lvl_to < lvl_from
        up = lvl_to > lvl_from
        starts = np.empty(len(f), dtype=bool)
        starts[0] = True
        starts[1:] = f[1:] != f[:-1]
        cs = np.cumsum(down)
        seg_base = np.repeat(
            (cs - down)[starts], np.diff(np.flatnonzero(
                np.r_[starts, True])))
        descended_before = (cs - down) - seg_base
        viol = up & (descended_before > 0)
        for i in np.flatnonzero(viol).tolist():
            fi = int(f[i])
            report.add(Diagnostic(
                code="RTE010",
                message=(f"route {int(src[fi])}->{int(dst[fi])} ascends "
                         f"from level {int(lvl_from[i])} to "
                         f"{int(lvl_to[i])} after descending"),
                loc=_link_loc(fab, int(g[i]), lid=int(dst[fi]),
                              level=int(lvl_from[i])),
            ))


class CdgCyclePass(CheckPass):
    """RTE020: the channel dependency graph must be acyclic."""

    name = "cdg"
    needs_tables = True

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        tables = ctx.tables
        fab = ctx.fabric
        try:
            deps = channel_dependencies(tables)
        except ValueError:
            return  # broken walks are reachability findings
        ctx.artifacts["cdg_dependencies"] = len(deps)
        cycle = find_cycle(deps)
        if cycle is None:
            return
        desc = " -> ".join(
            f"{fab.node_names[fab.port_owner[gp]]}[{int(fab.local_port(gp))}]"
            for gp in cycle
        )
        report.add(Diagnostic(
            code="RTE020",
            message=f"channel dependency cycle: {desc}",
            loc=_link_loc(fab, int(cycle[0])),
            data={"cycle_gports": [int(gp) for gp in cycle]},
        ))


class DmodkConformancePass(CheckPass):
    """RTE030: tables claiming to be D-Mod-K must equal eq. (1).

    Rebuilds the closed-form reference tables for the fabric and diffs
    every (switch, destination) entry.  Runs only when the context says
    the tables came from the ``dmodk`` engine (or ``always=True``).
    """

    name = "dmodk-conformance"
    needs_tables = True

    def __init__(self, always: bool = False) -> None:
        self.always = always

    def applicable(self, ctx: CheckContext) -> bool:
        if not super().applicable(ctx):
            return False
        if ctx.fabric.spec is None:
            return False
        return self.always or ctx.routing_name == "dmodk"

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        from ..routing.dmodk import route_dmodk

        tables = ctx.tables
        fab = ctx.fabric
        ref = route_dmodk(fab, active=ctx.active)
        diff = np.argwhere(tables.switch_out != ref.switch_out)
        ctx.artifacts["dmodk_mismatches"] = len(diff)
        for row, dest in diff.tolist():
            node = fab.num_endports + int(row)
            have = int(tables.switch_out[row, dest])
            want = int(ref.switch_out[row, dest])
            report.add(Diagnostic(
                code="RTE030",
                message=(f"LFT entry for dest {dest} uses local port "
                         f"{int(have - fab.port_start[node]) if have >= 0 else -1}, "
                         f"eq. (1) mandates "
                         f"{int(want - fab.port_start[node])}"),
                loc=Loc(switch=fab.node_names[node], lid=int(dest),
                        level=int(fab.node_level[node])),
            ))
        if tables.host_up is not None or ref.host_up is not None:
            have_h = tables.host_up
            want_h = ref.host_up
            if have_h is None or want_h is None or not np.array_equal(
                    have_h, want_h):
                report.add(Diagnostic(
                    code="RTE030",
                    message="host up-port choices differ from eq. (1)",
                ))


class DownPortBalancePass(CheckPass):
    """RTE040: theorem-2 -- at most one destination per down link."""

    name = "down-balance"
    needs_tables = True

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        tables = ctx.tables
        fab = ctx.fabric
        try:
            counts = down_port_destination_counts(tables, active=ctx.active)
        except ValueError:
            return
        ctx.artifacts["down_port_counts"] = counts
        ctx.artifacts["theorem2_violations"] = int((counts > 1).sum())
        for gp in np.flatnonzero(counts > 1).tolist():
            report.add(Diagnostic(
                code="RTE040",
                message=(f"down link carries {int(counts[gp])} distinct "
                         "destinations (theorem 2 wants at most 1)"),
                loc=_link_loc(fab, gp),
            ))


class UpPortBalancePass(CheckPass):
    """RTE041: per-switch spread of destinations over up ports.

    Publishes the worst skew ``(max-min)/mean`` as an artifact; emits a
    warning per switch whose skew exceeds ``threshold``.
    """

    name = "up-balance"
    needs_tables = True

    def __init__(self, threshold: float = 0.5) -> None:
        self.threshold = threshold

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        tables = ctx.tables
        fab = ctx.fabric
        goes_up = fab.port_goes_up()
        worst = 0.0
        for row in range(fab.num_switches):
            node = fab.num_endports + row
            ports = fab.ports_of(node)
            up_ports = ports[goes_up[ports]]
            if len(up_ports) == 0:
                continue
            entries = tables.switch_out[row] if ctx.active is None \
                else tables.switch_out[row][ctx.active]
            entries = entries[entries >= 0]
            counts = np.array([(entries == gp).sum() for gp in up_ports],
                              dtype=np.float64)
            if counts.sum() == 0:
                continue
            skew = float((counts.max() - counts.min())
                         / max(counts.mean(), 1e-12))
            worst = max(worst, skew)
            if skew > self.threshold:
                report.add(Diagnostic(
                    code="RTE041",
                    message=(f"destinations spread unevenly over up ports "
                             f"(skew {skew:.2f}, counts "
                             f"{counts.astype(int).tolist()})"),
                    loc=Loc(switch=fab.node_names[node],
                            level=int(fab.node_level[node])),
                ))
        ctx.artifacts["up_balance_worst"] = worst


class MinimalityPass(CheckPass):
    """RTE050: every next hop must strictly reduce the BFS distance."""

    name = "minimality"
    needs_tables = True

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        tables = ctx.tables
        fab = ctx.fabric
        N = fab.num_endports
        sw_out = tables.switch_out
        ctx.artifacts["unreachable_entries"] = int((sw_out < 0).sum())
        dists = bfs_distances(fab, np.arange(N))
        nodes = N + np.arange(fab.num_switches)
        valid = sw_out >= 0
        next_node = np.where(valid, fab.peer_node[np.where(valid, sw_out, 0)],
                             -1)
        d_here = dists[np.arange(N)[None, :], nodes[:, None]]
        d_next = np.where(next_node >= 0,
                          dists[np.arange(N)[None, :], next_node], -2)
        non_min = valid & (d_next != d_here - 1)
        ctx.artifacts["non_minimal_entries"] = int(non_min.sum())
        for row, dest in np.argwhere(non_min).tolist():
            node = N + int(row)
            report.add(Diagnostic(
                code="RTE050",
                message=(f"next hop toward dest {dest} is at BFS distance "
                         f"{int(d_next[row, dest])}, expected "
                         f"{int(d_here[row, dest]) - 1}"),
                loc=Loc(switch=fab.node_names[node], lid=int(dest)),
            ))
