"""Contention-freedom certification (``CFC0xx``) -- the headline pass.

The paper's claim (section VI) that D-Mod-K routing plus ordered rank
placement keeps every CPS stage contention-free is *statically
decidable*: walk each stage's flows through the forwarding tables and
count flows per directed link.  This pass decides it:

* if every stage's maximum link load is 1, a machine-readable
  **certificate** is published (``ctx.artifacts["certificates"]``),
  binding the verdict to content digests of the tables and placement so
  a certificate cannot be replayed against different inputs;
* otherwise a **minimal counterexample** is emitted per offending stage
  (``CFC001``): the stage index, the directed link (switch, local port,
  global port id) and the colliding (src, dst) end-port pairs.

The static count is exactly the synchronous-stage link load the fluid
simulator observes in ``barrier`` mode, which is how the certificate is
cross-validated in the test suite.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from ..analysis.hsd import walk_flow_links
from ..collectives.schedule import stage_flows
from ..runtime.cache import tables_digest
from .common import MAX_COUNTEREXAMPLE_PAIRS, colliding_pairs_payload, link_loc
from .diagnostics import Diagnostic, DiagnosticReport
from .passes import CheckContext, CheckPass, ScheduleCase

__all__ = ["ContentionCertifierPass", "placement_digest", "CERTIFICATE_VERSION"]

#: version 2: adds ``certificate_kind`` plus explicit counterexample
#: truncation fields (``total_pairs``/``pairs_truncated``).
CERTIFICATE_VERSION = 2

#: cap on colliding pairs listed per counterexample (kept as an alias;
#: the shared constant lives in :mod:`repro.check.common`)
_MAX_PAIRS = MAX_COUNTEREXAMPLE_PAIRS


def placement_digest(placement: np.ndarray) -> str:
    """SHA-256 of a rank->port vector (certificate binding)."""
    arr = np.ascontiguousarray(np.asarray(placement, dtype=np.int64))
    h = hashlib.sha256(b"repro-placement-v1")
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


class ContentionCertifierPass(CheckPass):
    """Per-stage per-link static flow counting; certificate or refutation."""

    name = "certify"
    needs_tables = True
    needs_schedule = True

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        certificates = ctx.artifacts.setdefault("certificates", [])
        stage_loads: dict[str, list[int]] = {}
        ctx.artifacts["certifier_stage_max"] = stage_loads
        for case in ctx.schedule:
            self._certify_case(ctx, report, case, certificates, stage_loads)

    # ------------------------------------------------------------------
    def _certify_case(self, ctx: CheckContext, report: DiagnosticReport,
                      case: ScheduleCase, certificates: list[dict[str, Any]],
                      stage_loads: dict[str, list[int]]) -> None:
        tables = ctx.tables
        fab = ctx.fabric
        maxima: list[int] = []
        overall_max = 0
        refuted = False
        total_flows = 0

        for i, st in enumerate(case.cps):
            src, dst = stage_flows(st, case.placement)
            if len(src) == 0:
                maxima.append(0)
                continue
            total_flows += len(src)
            try:
                flow_idx, gports = walk_flow_links(tables, src, dst)
            except ValueError as exc:
                report.add(Diagnostic(
                    code="RTE001",
                    message=(f"{case.name()}: stage {i} cannot be walked "
                             f"through the tables ({exc}); certification "
                             "aborted for this case"),
                ))
                return
            loads = np.zeros(fab.num_ports, dtype=np.int64)
            np.add.at(loads, gports, 1)
            stage_max = int(loads.max()) if len(loads) else 0
            maxima.append(stage_max)
            overall_max = max(overall_max, stage_max)
            if stage_max <= 1:
                continue
            refuted = True
            gp = int(loads.argmax())
            on_link = flow_idx[gports == gp]
            payload = colliding_pairs_payload(src, dst, on_link)
            pairs = payload["colliding_pairs"]
            report.add(Diagnostic(
                code="CFC001",
                message=(f"{case.name()}: stage {i} "
                         f"({st.label or 'unlabelled'}) places {stage_max} "
                         f"concurrent flows on one directed link; colliding "
                         f"(src, dst) end-ports: {pairs}"
                         + (f" (+{payload['total_pairs'] - len(pairs)} more)"
                            if payload["pairs_truncated"] else "")),
                loc=link_loc(fab, gp, stage=i),
                data={"case": case.name(), "stage": i,
                      "link_load": stage_max, "gport": gp, **payload},
            ))

        stage_loads[case.name()] = maxima
        if refuted:
            return
        if total_flows == 0:
            report.add(Diagnostic(
                code="CFC002",
                message=f"{case.name()}: schedule produced no flows; "
                        "certificate would be vacuous",
            ))
            return
        certificates.append({
            "kind": "contention-freedom-certificate",
            "version": CERTIFICATE_VERSION,
            "certificate_kind": "enumerated",
            "case": case.name(),
            "topology": str(fab.spec) if fab.spec is not None else None,
            "num_endports": int(fab.num_endports),
            "routing": ctx.routing_name or "unknown",
            "tables_digest": tables_digest(tables),
            "cps": case.cps.name,
            "num_stages": len(case.cps.stages),
            "num_flows": int(total_flows),
            "placement_digest": placement_digest(case.placement),
            "max_link_load": int(overall_max),
            "verdict": "contention-free",
        })
