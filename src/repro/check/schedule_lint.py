"""Collective-schedule lint (``SCH0xx``).

Runs over the :class:`~repro.check.passes.ScheduleCase` list of the
context: placements are validated against the fabric (``SCH001``,
``SCH002``) and every CPS stage is checked against the paper's
structural observations -- partial-permutation shape (``SCH010``) and
constant displacement (``SCH020``, observation 1).  The displacement
pass also publishes the CPS classification (unidirectional /
bidirectional / mixed) as an artifact, reusing
:mod:`repro.collectives.classify` -- the scattered ad-hoc checks now
live behind one diagnostics surface.
"""

from __future__ import annotations

import numpy as np

from ..collectives.classify import (
    classify,
    has_constant_displacement,
    stage_displacements,
)
from .diagnostics import Diagnostic, DiagnosticReport, Loc
from .passes import CheckContext, CheckPass

__all__ = ["PlacementLintPass", "StageLintPass"]


class PlacementLintPass(CheckPass):
    """SCH001 duplicate slots / SCH002 out-of-range ports."""

    name = "placement"
    needs_schedule = True

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        n = ctx.fabric.num_endports
        for case in ctx.schedule:
            r2p = np.asarray(case.placement, dtype=np.int64)
            used = r2p[r2p >= 0]
            uniq, counts = np.unique(used, return_counts=True)
            for port in uniq[counts > 1].tolist():
                report.add(Diagnostic(
                    code="SCH001",
                    message=(f"{case.name()}: {int(counts[uniq == port][0])} "
                             f"ranks share end-port {int(port)}"),
                    loc=Loc(lid=int(port)),
                ))
            oob = used[(used >= n)]
            low = r2p[r2p < -1]
            for port in np.concatenate([oob, low]).tolist():
                report.add(Diagnostic(
                    code="SCH002",
                    message=(f"{case.name()}: placement references end-port "
                             f"{int(port)} outside 0..{n - 1}"),
                    loc=Loc(lid=int(port)),
                ))


class StageLintPass(CheckPass):
    """SCH010 non-permutation stages / SCH020 non-constant displacement."""

    name = "stage"
    needs_schedule = True

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        classifications: dict[str, str] = {}
        for case in ctx.schedule:
            cps = case.cps
            n = cps.num_ranks
            classifications[case.name()] = classify(cps)
            for i, st in enumerate(cps):
                if len(st) == 0:
                    continue
                if not st.is_permutation():
                    report.add(Diagnostic(
                        code="SCH010",
                        message=(f"{case.name()}: stage {i} "
                                 f"({st.label or 'unlabelled'}) has a rank "
                                 "sending or receiving twice"),
                        loc=Loc(stage=i),
                    ))
                if not has_constant_displacement(st, n):
                    disp = stage_displacements(st, n)
                    shown = disp[:8].tolist()
                    report.add(Diagnostic(
                        code="SCH020",
                        message=(f"{case.name()}: stage {i} mixes "
                                 f"{len(disp)} displacements "
                                 f"{shown}{'...' if len(disp) > 8 else ''} "
                                 "(observation 1 expects one, or a "
                                 "bidirectional pair)"),
                        loc=Loc(stage=i),
                        data={"displacements": shown},
                    ))
        ctx.artifacts["cps_classification"] = classifications
