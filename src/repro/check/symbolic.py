"""Symbolic contention-freedom verification (``SYM0xx``).

The enumerating certifier (:mod:`repro.check.certify`) decides the
paper's section-VI claim by materialising D-Mod-K forwarding tables and
walking every stage's flows through them -- O(S * N) table memory and
O(flows * hops) walks.  This module decides the *same* question from
the closed form alone.

The appendix lemmas make every link of a D-Mod-K route a pure function
of modular arithmetic on the endpoints.  With ``r = rho(y)`` the routing
index of destination ``y`` (``y`` itself for full populations, its dense
active rank for job-aware Cont.-X routing), eq. (1) gives the residue
profile ``Q_l(r) = floor(r / W_{l-1}) mod (w_l * p_l)``, and:

* the flow ``x -> y`` turns around at its **split level**
  ``L = min { l : floor(x / M_l) == floor(y / M_l) }`` (nearest common
  ancestor level);
* the up-path switch at level ``l < L`` has w-digits
  ``e_i = Q_i(r) mod w_i`` (i = 1..l) and m-digits ``floor(x / M_l)``;
  its up link toward ``y`` leaves through up-port ordinal ``Q_{l+1}(r)``;
* the down-path switch at level ``l <= L`` has the same w-digits and
  m-digits ``floor(y / M_l)`` (lemma 5: the down path is a function of
  the destination alone); its down link uses local port
  ``a_l(y) + k_l(r) * m_l`` with ``a_l(y) = floor(y / M_{l-1}) mod m_l``
  and ``k_l(r) = Q_l(r) // w_l``.

Because the canonical fabric (:func:`repro.fabric.build_fabric`) lays
nodes and ports out in exactly the mixed-radix order of these digits,
the formulas above evaluate directly to **global port ids identical to
the enumerated walk's** -- :func:`symbolic_flow_links` is a drop-in twin
of :func:`repro.analysis.hsd.walk_flow_links` that needs no tables and
no fabric, only the ``PGFTSpec``.  Verdicts, offending links and even
argmax tie-breaks therefore agree bit for bit with the enumerating
certifier, which is what the differential engine
(:class:`EngineAgreementPass`, ``--engine both``) checks.

Grouping flows by their residue signature is what makes re-verification
*incremental*: a placement/active-set delta perturbs only the flows
whose pairs or routing indices changed, and a repaired single cable
only the flows whose residue profile maps onto that cable
(:meth:`SymbolicCertifier.recertify` /
:meth:`SymbolicCertifier.recertify_link_failure`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..analysis.hsd import walk_flow_links
from ..collectives.cps import CPS
from ..fabric.lft import ForwardingTables
from ..collectives.schedule import stage_flow_keys, stage_flows
from ..routing.dmodk import dense_ranks, q_profile
from ..runtime.cache import active_digest, cps_digest, spec_digest
from ..topology.spec import PGFTSpec
from .certify import CERTIFICATE_VERSION, placement_digest
from .common import colliding_pairs_payload
from .diagnostics import Diagnostic, DiagnosticReport, Loc
from .passes import CheckContext, CheckPass

__all__ = [
    "split_levels",
    "symbolic_flow_links",
    "symbolic_class_loads",
    "symbolic_stage_max",
    "decode_link",
    "symbolic_link_loc",
    "canonical_peer",
    "SymbolicResult",
    "IncrementalStats",
    "SymbolicCertifier",
    "SymbolicContentionPass",
    "EngineAgreementPass",
]

_UNSET = object()


# ----------------------------------------------------------------------
# Closed-form link arithmetic
# ----------------------------------------------------------------------
def split_levels(spec: PGFTSpec, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Nearest-common-ancestor level of each flow: the smallest ``l``
    with ``floor(src / M_l) == floor(dst / M_l)`` (``src != dst``
    assumed).  Agreement is monotone in ``l``, so the level is one plus
    the number of disagreeing prefixes."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    Mp = spec.M_prefix()
    L = np.ones(src.shape, dtype=np.int64)
    for level in range(1, spec.h):
        L += (src // Mp[level]) != (dst // Mp[level])
    return L


def symbolic_flow_links(
    spec: PGFTSpec, src: np.ndarray, dst: np.ndarray,
    ridx: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form twin of :func:`repro.analysis.hsd.walk_flow_links`.

    Returns ``(flow_idx, gports)``: for every directed link a D-Mod-K
    route ``src[i] -> dst[i]`` would traverse on the canonical fabric,
    the flow index and the link's global port id -- the *same* ids the
    enumerated walk produces, computed from eq. (1) without tables.
    ``ridx`` is the routing-index vector (``dense_ranks``); ``None``
    means the identity (fully populated) ranking.  Flows with
    ``src == dst`` contribute nothing.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src/dst shape mismatch")
    idx = np.flatnonzero(src != dst)
    if len(idx) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    x = src[idx]
    y = dst[idx]
    r = y if ridx is None else np.asarray(ridx, dtype=np.int64)[y]

    h = spec.h
    Mp = spec.M_prefix()
    Wp = spec.W_prefix()
    Q = q_profile(spec, r)                       # (h, n); row l-1 = Q_l(r)
    L = split_levels(spec, x, y)

    # Cumulative w-digit packs: epacks[l] = sum_{i=1..l} e_i * W_{i-1},
    # the w-digit block shared by the level-l switches on both legs.
    epacks = np.zeros((h + 1, len(x)), dtype=np.int64)
    for level in range(1, h + 1):
        epacks[level] = epacks[level - 1] + (
            Q[level - 1] % spec.w[level - 1]) * Wp[level - 1]

    flows: list[np.ndarray] = []
    ports: list[np.ndarray] = []

    # Up leg: the host link, then switch up links at levels 1..L-1.
    flows.append(idx)
    ports.append(x * spec.up_ports_at(0) + Q[0])
    for level in range(1, h):
        on = L > level
        if not on.any():
            continue
        s = epacks[level][on] + (x[on] // Mp[level]) * Wp[level]
        flows.append(idx[on])
        ports.append(spec.port_level_base(level) + s * spec.ports_at(level)
                     + spec.down_ports_at(level) + Q[level][on])

    # Down leg: switch down links at levels L..1 (lemma 5 retrace).
    for level in range(1, h + 1):
        on = L >= level
        if not on.any():
            continue
        s = epacks[level][on] + (y[on] // Mp[level]) * Wp[level]
        a = (y[on] // Mp[level - 1]) % spec.m[level - 1]
        k = Q[level - 1][on] // spec.w[level - 1]
        flows.append(idx[on])
        ports.append(spec.port_level_base(level) + s * spec.ports_at(level)
                     + a + k * spec.m[level - 1])

    return np.concatenate(flows), np.concatenate(ports)


def _sparse_loads(gports: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted unique link ids + flow counts (sparse per-link loads)."""
    if len(gports) == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    return np.unique(gports, return_counts=True)


def symbolic_class_loads(
    spec: PGFTSpec, src: np.ndarray, dst: np.ndarray,
    flow_class: np.ndarray, num_classes: int | None = None,
    ridx: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-traffic-class sparse link loads of one stage, from eq. (1).

    :func:`symbolic_flow_links` partitioned by traffic class:
    ``flow_class[i]`` is the class of flow ``i``, and the result is
    ``(links, loads)`` where ``links`` lists the distinct global port
    ids any flow traverses (sorted) and ``loads[c, k]`` counts class-
    ``c`` flows crossing ``links[k]``.  Summing over classes recovers
    :func:`_sparse_loads` of the unpartitioned stage.  This is what
    lets the isolation analyzer *statically* prove per-class
    contention-freedom (``loads[c].max() <= 1`` for class ``c``'s own
    collective) and read off cross-class interference (class-``b`` load
    on links where class ``a`` is present) without tables or
    simulation.
    """
    flow_class = np.asarray(flow_class, dtype=np.int64)
    src = np.asarray(src, dtype=np.int64)
    if flow_class.shape != src.shape:
        raise ValueError("flow_class/src shape mismatch")
    C = int(num_classes) if num_classes is not None \
        else int(flow_class.max()) + 1 if len(flow_class) else 1
    if len(flow_class) and (flow_class.min() < 0 or flow_class.max() >= C):
        raise ValueError("flow_class references a class index out of range")
    flow_idx, gports = symbolic_flow_links(spec, src, dst, ridx)
    links = np.unique(gports)
    if len(links) == 0:
        return links, np.zeros((C, 0), dtype=np.int64)
    col = np.searchsorted(links, gports)
    keys = flow_class[flow_idx] * len(links) + col
    loads = np.bincount(keys, minlength=C * len(links)).reshape(C, len(links))
    return links, loads


def symbolic_stage_max(spec: PGFTSpec, src: np.ndarray, dst: np.ndarray,
                       ridx: np.ndarray | None = None) -> int:
    """Maximum per-link flow count of one synchronous stage, from the
    closed form (equals :func:`repro.analysis.hsd.stage_max_hsd` on
    canonical D-Mod-K tables)."""
    _, gports = symbolic_flow_links(spec, src, dst, ridx)
    _, counts = _sparse_loads(gports)
    return int(counts.max()) if len(counts) else 0


# ----------------------------------------------------------------------
# Link decoding (diagnostics without a fabric)
# ----------------------------------------------------------------------
def decode_link(spec: PGFTSpec, gport: int) -> dict[str, Any]:
    """Name the directed link behind a canonical global port id.

    Returns owner name (matching the canonical fabric's default names),
    level, local port and direction -- enough to render a ``Loc``
    without ever building the fabric.
    """
    gport = int(gport)
    host_ports = spec.num_endports * spec.up_ports_at(0)
    if 0 <= gport < host_ports:
        up0 = spec.up_ports_at(0)
        return {"owner": f"H{gport // up0:04d}", "level": 0,
                "port": gport % up0, "direction": "up"}
    for level in spec.iter_levels():
        base = spec.port_level_base(level)
        span = spec.switches_at(level) * spec.ports_at(level)
        if base <= gport < base + span:
            local = (gport - base) % spec.ports_at(level)
            index = (gport - base) // spec.ports_at(level)
            ordinal = spec.switch_level_base(level) + index
            down = local < spec.down_ports_at(level)
            return {"owner": f"SW{level}-{ordinal:04d}", "level": level,
                    "port": local, "direction": "down" if down else "up"}
    raise ValueError(f"global port {gport} outside the canonical fabric "
                     f"of {spec}")


def symbolic_link_loc(spec: PGFTSpec, gport: int,
                      **extra: Any) -> Loc:
    """``Loc`` of a directed link, derived purely from the spec."""
    d = decode_link(spec, gport)
    return Loc(switch=d["owner"], gport=int(gport), port=d["port"],
               level=d["level"], **extra)


def canonical_peer(spec: PGFTSpec, gport: int) -> int:
    """Far-end global port id of a cable, from the connection rule alone
    (equals ``fabric.port_peer[gport]`` on the canonical fabric).

    Paper Fig. 5: cable ``k`` joins up-port ``e + k*w_l`` of the lower
    node to down-port ``a + k*m_l`` of the upper node, the two nodes'
    digit vectors agreeing everywhere but position ``l``.
    """
    d = decode_link(spec, gport)
    level = d["level"]
    Wp = spec.W_prefix()
    if d["direction"] == "up":
        # ordinal of the lower node within its level
        if level == 0:
            low, q = gport // spec.up_ports_at(0), d["port"]
        else:
            base = spec.port_level_base(level)
            low = (gport - base) // spec.ports_at(level)
            q = d["port"] - spec.down_ports_at(level)
        m_up, w_up = spec.m[level], spec.w[level]
        e, k = q % w_up, q // w_up
        wpack, mrest = low % Wp[level], low // Wp[level]
        a = mrest % m_up
        upper = wpack + e * Wp[level] + (mrest // m_up) * Wp[level + 1]
        return (spec.port_level_base(level + 1)
                + upper * spec.ports_at(level + 1) + a + k * m_up)
    # down port at switch level >= 1: peer is the lower node's up port
    base = spec.port_level_base(level)
    sw = (gport - base) // spec.ports_at(level)
    r = d["port"]
    m_l, w_l = spec.m[level - 1], spec.w[level - 1]
    a, k = r % m_l, r // m_l
    wpack, mrest = sw % Wp[level], sw // Wp[level]
    e = wpack // Wp[level - 1]
    q = e + k * w_l
    lower = wpack % Wp[level - 1] + (a + mrest * m_l) * Wp[level - 1]
    if level == 1:
        return lower * spec.up_ports_at(0) + q
    return (spec.port_level_base(level - 1)
            + lower * spec.ports_at(level - 1)
            + spec.down_ports_at(level - 1) + q)


# ----------------------------------------------------------------------
# Certifier with incremental state
# ----------------------------------------------------------------------
@dataclass
class _StageState:
    """Per-stage residue-class summary kept for incremental deltas.

    ``flow_idx``/``gports`` are the raw per-link traversal arrays
    (``certify(..., keep_links=True)``): with them cached, a
    link-failure delta touches only ``np.isin`` lookups -- no
    closed-form re-evaluation at all -- which is what makes a whole
    fault-space sweep cost deltas rather than cold certifications.
    """

    src: np.ndarray
    dst: np.ndarray
    link_ids: np.ndarray      # sorted unique link gports
    link_counts: np.ndarray   # flows per link (parallel to link_ids)
    flow_idx: np.ndarray | None = None   # cached traversal (optional)
    gports: np.ndarray | None = None


@dataclass
class CaseState:
    """Everything :meth:`SymbolicCertifier.recertify` needs to re-verify
    only what a delta touched."""

    cps: CPS
    placement: np.ndarray
    active: np.ndarray | None
    ridx: np.ndarray
    stages: list[_StageState] = field(default_factory=list)


@dataclass
class IncrementalStats:
    """How much work an incremental re-certification actually did."""

    stages_touched: int = 0
    stages_total: int = 0
    flows_recomputed: int = 0
    flows_total: int = 0


@dataclass
class SymbolicResult:
    """Verdict of one (CPS, placement) case under the symbolic engine."""

    maxima: list[int]
    violations: list[dict[str, Any]]
    total_flows: int

    @property
    def max_link_load(self) -> int:
        return max(self.maxima, default=0)

    @property
    def refuted(self) -> bool:
        return self.max_link_load > 1

    @property
    def verdict(self) -> str:
        if self.refuted:
            return "refuted"
        return "vacuous" if self.total_flows == 0 else "contention-free"


def _occurrence_keys(values: np.ndarray, scale: int) -> np.ndarray:
    """Key each element by ``(value, occurrence ordinal)`` so multiset
    differences can be taken with plain set membership.  ``scale`` must
    exceed any occurrence count on either side."""
    order = np.argsort(values, kind="stable")
    sv = values[order]
    starts = np.flatnonzero(np.r_[True, sv[1:] != sv[:-1]]) if len(sv) else \
        np.empty(0, dtype=np.int64)
    runs = np.diff(np.r_[starts, len(sv)])
    occ = np.arange(len(sv), dtype=np.int64) - np.repeat(starts, runs)
    keys = np.empty(len(sv), dtype=np.int64)
    keys[order] = sv * scale + occ
    return keys


def _multiset_delta(a: np.ndarray, b: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Masks of ``a`` entries absent from ``b`` and vice versa, counting
    multiplicity (an element occurring twice in ``a`` and once in ``b``
    has exactly one ``a`` occurrence marked removed)."""
    scale = max(len(a), len(b)) + 1
    ka = _occurrence_keys(a, scale)
    kb = _occurrence_keys(b, scale)
    return ~np.isin(ka, kb), ~np.isin(kb, ka)


def _apply_delta(ids: np.ndarray, counts: np.ndarray,
                 sub: np.ndarray, add: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Merge link-multiset deltas into a sparse (ids, counts) summary."""
    if len(sub) == 0 and len(add) == 0:
        return ids, counts
    all_ids = np.unique(np.concatenate([ids, add]))
    c = np.zeros(len(all_ids), dtype=np.int64)
    c[np.searchsorted(all_ids, ids)] = counts
    np.add.at(c, np.searchsorted(all_ids, add), 1)
    np.subtract.at(c, np.searchsorted(all_ids, sub), 1)
    keep = c > 0
    return all_ids[keep], c[keep]


class SymbolicCertifier:
    """Stateful symbolic engine: full certification plus incremental
    re-certification under placement, active-set and link-failure deltas.

    The returned :class:`CaseState` is the residue-class summary; feed it
    back to :meth:`recertify` with a changed placement/active set to have
    only the touched flows recomputed.
    """

    def __init__(self, spec: PGFTSpec,
                 active: np.ndarray | None = None) -> None:
        self.spec = spec
        self.active = None if active is None else np.unique(
            np.asarray(active, dtype=np.int64))
        self.ridx = dense_ranks(spec.num_endports, self.active)

    # -- full pass ------------------------------------------------------
    def certify(self, cps: CPS, placement: np.ndarray,
                keep_links: bool = False) -> tuple[SymbolicResult, CaseState]:
        """Certify one case; ``keep_links`` additionally caches the raw
        per-stage traversal arrays in the returned state so subsequent
        :meth:`recertify_link_failure` calls are pure delta lookups."""
        placement = np.asarray(placement, dtype=np.int64)
        state = CaseState(cps=cps, placement=placement.copy(),
                          active=self.active, ridx=self.ridx)
        maxima: list[int] = []
        violations: list[dict[str, Any]] = []
        total_flows = 0
        for i, st in enumerate(cps):
            src, dst = stage_flows(st, placement)
            if len(src) == 0:
                maxima.append(0)
                state.stages.append(_StageState(
                    src=src, dst=dst,
                    link_ids=np.empty(0, dtype=np.int64),
                    link_counts=np.empty(0, dtype=np.int64)))
                continue
            total_flows += len(src)
            flow_idx, gports = symbolic_flow_links(self.spec, src, dst,
                                                   self.ridx)
            ids, counts = _sparse_loads(gports)
            state.stages.append(_StageState(
                src=src, dst=dst, link_ids=ids, link_counts=counts,
                flow_idx=flow_idx if keep_links else None,
                gports=gports if keep_links else None))
            stage_max = int(counts.max()) if len(counts) else 0
            maxima.append(stage_max)
            if stage_max <= 1:
                continue
            # ids are sorted, so the first maximal count names the lowest
            # offending gport -- the same link the enumerated certifier's
            # dense argmax reports.
            gp = int(ids[int(np.argmax(counts))])
            on_link = np.unique(flow_idx[gports == gp])
            violations.append({
                "stage": i, "stage_label": st.label, "gport": gp,
                "link_load": stage_max,
                **colliding_pairs_payload(src, dst, on_link),
            })
        return SymbolicResult(maxima=maxima, violations=violations,
                              total_flows=total_flows), state

    # -- placement / active-set deltas ---------------------------------
    def recertify(self, state: CaseState,
                  placement: np.ndarray | None = None,
                  active: Any = _UNSET,
                  ) -> tuple[SymbolicResult, CaseState, IncrementalStats]:
        """Re-certify after a delta, recomputing only touched flows.

        ``placement`` replaces the rank->port vector (``None`` keeps the
        old one); ``active`` replaces the job's active end-port set
        (omit to keep, pass ``None`` for fully populated).  Flows whose
        (src, dst) pair survives the delta with an unchanged destination
        routing index keep their residue classes -- their links are
        carried over from ``state`` instead of being recomputed.
        """
        spec = self.spec
        N = spec.num_endports
        new_placement = state.placement if placement is None else \
            np.asarray(placement, dtype=np.int64)
        if active is _UNSET:
            new_active, new_ridx = state.active, state.ridx
        else:
            new_active = None if active is None else np.unique(
                np.asarray(active, dtype=np.int64))
            new_ridx = dense_ranks(N, new_active)
        ridx_changed = state.ridx != new_ridx

        new_state = CaseState(cps=state.cps, placement=new_placement.copy(),
                              active=new_active, ridx=new_ridx)
        stats = IncrementalStats(stages_total=len(state.cps.stages))
        maxima: list[int] = []
        violations: list[dict[str, Any]] = []
        total_flows = 0
        for i, st in enumerate(state.cps):
            old = state.stages[i]
            src, dst = stage_flows(st, new_placement)
            total_flows += len(src)
            stats.flows_total += len(src)
            sub_mask, add_mask = _multiset_delta(
                stage_flow_keys(old.src, old.dst, N),
                stage_flow_keys(src, dst, N))
            # a surviving pair whose destination re-ranked still moves
            sub_mask |= ridx_changed[old.dst] if len(old.dst) else False
            add_mask |= ridx_changed[dst] if len(dst) else False
            if not sub_mask.any() and not add_mask.any():
                ids, counts = old.link_ids, old.link_counts
            else:
                stats.stages_touched += 1
                stats.flows_recomputed += int(sub_mask.sum())
                stats.flows_recomputed += int(add_mask.sum())
                _, sub = symbolic_flow_links(
                    spec, old.src[sub_mask], old.dst[sub_mask], state.ridx)
                _, add = symbolic_flow_links(
                    spec, src[add_mask], dst[add_mask], new_ridx)
                ids, counts = _apply_delta(old.link_ids, old.link_counts,
                                           sub, add)
            new_state.stages.append(_StageState(src=src, dst=dst,
                                                link_ids=ids,
                                                link_counts=counts))
            stage_max = int(counts.max()) if len(counts) else 0
            maxima.append(stage_max)
            if stage_max > 1:
                gp = int(ids[int(np.argmax(counts))])
                flow_idx, gports = symbolic_flow_links(spec, src, dst,
                                                       new_ridx)
                on_link = np.unique(flow_idx[gports == gp])
                violations.append({
                    "stage": i, "stage_label": st.label, "gport": gp,
                    "link_load": stage_max,
                    **colliding_pairs_payload(src, dst, on_link),
                })
        result = SymbolicResult(maxima=maxima, violations=violations,
                                total_flows=total_flows)
        return result, new_state, stats

    # -- single-link failure -------------------------------------------
    def recertify_link_failure(self, state: CaseState,
                               repaired_tables: ForwardingTables,
                               dead_gports: Any,
                               ) -> tuple[SymbolicResult, IncrementalStats]:
        """Re-certify after cable removals healed by
        :func:`repro.routing.repair.repair_tables`.

        Only the flows whose closed-form path crossed a dead cable are
        walked through the repaired tables; every other flow keeps its
        eq.-(1) links (the repair re-points exactly the entries that
        became dead, so live paths are untouched).  ``repaired_tables``
        must be the repair of canonical D-Mod-K tables for this spec and
        active set; ``dead_gports`` may name either side of each cable.

        When ``state`` carries cached traversals
        (``certify(..., keep_links=True)``) the delta needs no
        closed-form evaluation at all: affected flows come from an
        ``isin`` over the cache, and a refuted stage's counterexample is
        reconstructed from cache + repaired-walk delta -- the flows on
        the offending link are the unaffected flows whose healthy path
        already used it plus the detoured flows whose repaired path
        lands on it (repair locality guarantees those are all of them).
        """
        spec = self.spec
        dead = np.atleast_1d(np.asarray(dead_gports, dtype=np.int64))
        both = np.unique(np.concatenate(
            [dead, np.array([canonical_peer(spec, int(g)) for g in dead],
                            dtype=np.int64)]))
        stats = IncrementalStats(stages_total=len(state.cps.stages))
        maxima: list[int] = []
        violations: list[dict[str, Any]] = []
        total_flows = 0
        for i, st in enumerate(state.cps):
            old = state.stages[i]
            src, dst = old.src, old.dst
            total_flows += len(src)
            stats.flows_total += len(src)
            hit = np.isin(old.link_ids, both)
            add_fi = add = aff = None
            if not hit.any():
                ids, counts = old.link_ids, old.link_counts
            else:
                stats.stages_touched += 1
                if old.gports is not None and old.flow_idx is not None:
                    flow_idx, gports = old.flow_idx, old.gports
                else:
                    flow_idx, gports = symbolic_flow_links(spec, src, dst,
                                                           state.ridx)
                aff = np.unique(flow_idx[np.isin(gports, both)])
                stats.flows_recomputed += len(aff)
                on = np.isin(flow_idx, aff)
                sub = gports[on]
                add_fi, add = walk_flow_links(repaired_tables,
                                              src[aff], dst[aff])
                ids, counts = _apply_delta(old.link_ids, old.link_counts,
                                           sub, add)
            stage_max = int(counts.max()) if len(counts) else 0
            maxima.append(stage_max)
            if stage_max > 1:
                gp = int(ids[int(np.argmax(counts))])
                if aff is not None and old.gports is not None \
                        and old.flow_idx is not None:
                    keep = ~np.isin(old.flow_idx, aff)
                    on_old = old.flow_idx[keep][old.gports[keep] == gp]
                    on_new = aff[add_fi[add == gp]] \
                        if add_fi is not None else np.empty(0, dtype=np.int64)
                    on_link = np.unique(np.concatenate([on_old, on_new]))
                else:
                    flow_idx, gports = walk_flow_links(repaired_tables,
                                                       src, dst)
                    on_link = np.unique(flow_idx[gports == gp])
                violations.append({
                    "stage": i, "stage_label": st.label, "gport": gp,
                    "link_load": stage_max,
                    **colliding_pairs_payload(src, dst, on_link),
                })
        return SymbolicResult(maxima=maxima, violations=violations,
                              total_flows=total_flows), stats


# ----------------------------------------------------------------------
# Pipeline passes
# ----------------------------------------------------------------------
class SymbolicContentionPass(CheckPass):
    """Closed-form certification: same verdicts and certificate schema
    as :class:`~repro.check.certify.ContentionCertifierPass`, no tables.

    Certificates carry ``certificate_kind: "symbolic"`` and bind to the
    *spec*, CPS, placement and active-set digests (there are no tables
    to digest; for the canonical fabric the spec determines them).
    """

    name = "symbolic-certify"
    needs_schedule = True

    def __init__(self, active: np.ndarray | None = None) -> None:
        self.active = active

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        spec = ctx.fabric.spec
        if spec is None:
            report.add(Diagnostic(
                code="SYM010",
                message="fabric carries no PGFT spec; the symbolic engine "
                        "reasons over the closed form and cannot run"))
            return
        if ctx.routing_name not in ("", "dmodk"):
            report.add(Diagnostic(
                code="SYM010",
                message=f"tables under test come from "
                        f"{ctx.routing_name!r}, not D-Mod-K; the symbolic "
                        "engine would certify the wrong routing"))
            return
        active = self.active if self.active is not None else ctx.active
        certifier = SymbolicCertifier(spec, active)
        certificates = ctx.artifacts.setdefault("certificates", [])
        stage_loads: dict[str, list[int]] = {}
        ctx.artifacts["symbolic_stage_max"] = stage_loads
        for case in ctx.schedule:
            result, _ = certifier.certify(case.cps, case.placement)
            stage_loads[case.name()] = list(result.maxima)
            if result.refuted:
                for v in result.violations:
                    pairs = v["colliding_pairs"]
                    report.add(Diagnostic(
                        code="SYM001",
                        message=(f"{case.name()}: stage {v['stage']} "
                                 f"({v['stage_label'] or 'unlabelled'}) "
                                 f"places {v['link_load']} concurrent flows "
                                 f"on one directed link (closed-form proof); "
                                 f"colliding (src, dst) end-ports: {pairs}"
                                 + (f" (+{v['total_pairs'] - len(pairs)} more)"
                                    if v["pairs_truncated"] else "")),
                        loc=symbolic_link_loc(spec, v["gport"],
                                              stage=v["stage"]),
                        data={"case": case.name(), "stage": v["stage"],
                              "link_load": v["link_load"],
                              "gport": v["gport"],
                              "colliding_pairs": pairs,
                              "total_pairs": v["total_pairs"],
                              "pairs_truncated": v["pairs_truncated"]},
                    ))
                continue
            if result.total_flows == 0:
                report.add(Diagnostic(
                    code="SYM002",
                    message=f"{case.name()}: schedule produced no flows; "
                            "certificate would be vacuous"))
                continue
            certificates.append({
                "kind": "contention-freedom-certificate",
                "version": CERTIFICATE_VERSION,
                "certificate_kind": "symbolic",
                "case": case.name(),
                "topology": str(spec),
                "num_endports": int(spec.num_endports),
                "routing": "dmodk",
                "spec_digest": spec_digest(spec),
                "cps": case.cps.name,
                "cps_digest": cps_digest(case.cps),
                "num_stages": len(case.cps.stages),
                "num_flows": int(result.total_flows),
                "placement_digest": placement_digest(case.placement),
                "active_digest": active_digest(spec.num_endports,
                                               certifier.active),
                "max_link_load": int(result.max_link_load),
                "verdict": "contention-free",
            })


class EngineAgreementPass(CheckPass):
    """Differential validation (``--engine both``): the enumerating and
    symbolic certifiers must agree on every per-stage maximum link load
    and on the offending link of every refuted stage; any divergence is
    a ``SYM090`` error."""

    name = "differential"
    needs_schedule = True

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        enum = ctx.artifacts.get("certifier_stage_max")
        sym = ctx.artifacts.get("symbolic_stage_max")
        if enum is None or sym is None:
            return  # one of the engines did not run; nothing to compare
        compared = 0
        for case in sorted(sym):
            if case not in enum:
                continue
            compared += 1
            if enum[case] != sym[case]:
                report.add(Diagnostic(
                    code="SYM090",
                    message=(f"{case}: per-stage maximum link loads differ "
                             f"between engines (enumerated {enum[case]}, "
                             f"symbolic {sym[case]})"),
                    data={"case": case, "enumerated": enum[case],
                          "symbolic": sym[case]},
                ))
        e_links = {(d.data["case"], d.data["stage"]): d.data["gport"]
                   for d in report.by_code("CFC001")}
        s_links = {(d.data["case"], d.data["stage"]): d.data["gport"]
                   for d in report.by_code("SYM001")}
        for key in sorted(set(e_links) & set(s_links)):
            if e_links[key] != s_links[key]:
                case, stage = key
                report.add(Diagnostic(
                    code="SYM090",
                    message=(f"{case}: stage {stage} counterexample names "
                             f"different links (enumerated gport "
                             f"{e_links[key]}, symbolic {s_links[key]})"),
                    data={"case": case, "stage": stage,
                          "enumerated_gport": e_links[key],
                          "symbolic_gport": s_links[key]},
                ))
        ctx.artifacts["differential_cases"] = compared
