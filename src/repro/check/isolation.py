"""Traffic-class isolation analysis (``ISO0xx``).

The paper's certificates cover one global collective over one
homogeneous population.  Real clusters are multi-tenant: a compute
population runs its collective while storage targets stream I/O, and
the question becomes **per class** -- does each traffic class stay
contention-free over its *own* collective, and how hard can one class
step on another's links?

This pass answers both questions statically.  For every traffic class
``c`` of the fabric's :class:`~repro.fabric.nodetypes.NodeTypeMap` it
builds the class's own constant-displacement schedule (ranks = the
class's active members, in fabric order) and accounts flows per class
and per directed link -- through
:func:`~repro.check.symbolic.symbolic_class_loads` (eq. (1) closed
form, no tables, the engine that scales to 27k+ end-ports) or
:func:`~repro.analysis.hsd.stage_class_link_loads` (a table walk, for
arbitrary routing engines).  From one pass over the aligned stages it
derives:

* a **per-class contention verdict**: class ``c`` is contention-free
  iff no directed link ever carries two of its concurrent flows
  (``ISO001`` with a colliding-pairs counterexample otherwise, a
  per-class certificate when proven);
* the **cross-class interference matrix**: ``interference[a][b]`` is
  the maximum number of class-``b`` flows on any link some class-``a``
  flow occupies in the same stage -- a hard static bound that dynamic
  (packet/fluid) simulation of the same schedules can never exceed
  (``ISO012`` when it tops the configured bound);
* **per-type balance lint** (``ISO011``): the theorems need each
  class's routing indices to be *consecutive*; gaps mean eq. (1) no
  longer guarantees the class's own collective (type-aware routing
  restores density by construction);
* **type conformance** (``ISO020``): tables claiming ``typeaware``
  must equal the per-type closed form, entry for entry;
* **degraded-mode isolation** (``ISO030``, opt-in): compose with the
  fault-space machinery -- sample single-fault units, repair, and flag
  classes whose contention-freedom a repaired fabric loses.

``ISO090`` always summarises classes, engine, per-class worst loads
and the interference matrix; the machine-readable result lands in the
``isolation`` artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..analysis.hsd import stage_class_link_loads, walk_flow_links
from ..collectives import by_name, shift
from ..collectives.cps import CPS
from ..collectives.schedule import stage_flows
from ..fabric.lft import ForwardingTables
from ..fabric.nodetypes import NodeTypeMap
from ..routing.dmodk import dense_ranks
from ..routing.repair import repair_tables
from ..routing.typeaware import route_typeaware, typed_ranks
from ..runtime.cache import (
    active_digest,
    cps_digest,
    spec_digest,
    tables_digest,
    types_digest,
)
from ..topology.spec import PGFTSpec
from .certify import CERTIFICATE_VERSION, placement_digest
from .common import colliding_pairs_payload, link_loc
from .diagnostics import Diagnostic, DiagnosticReport, Loc
from .faultspace import enumerate_fault_units
from .passes import CheckContext, CheckPass
from .symbolic import symbolic_class_loads, symbolic_flow_links, symbolic_link_loc

__all__ = [
    "ISOLATION_ENGINES",
    "ClassSchedule",
    "build_class_schedules",
    "routing_ranks",
    "IsolationPass",
]

#: isolation accounting engines: ``auto`` prefers the closed form when
#: the routing's rank function is known, else walks the tables
ISOLATION_ENGINES = ("auto", "symbolic", "enumerate")


@dataclass(frozen=True)
class ClassSchedule:
    """One traffic class's own collective: the class index, its active
    members (= placement, fabric order) and the CPS over them."""

    name: str
    cls: int
    ports: np.ndarray
    cps: CPS


def _sampled_shift(n: int, max_stages: int) -> CPS:
    if n - 1 <= max_stages:
        return shift(n)
    step = (n - 1) // max_stages
    return shift(n, displacements=range(1, n, step))


def build_class_schedules(types: NodeTypeMap,
                          active: np.ndarray | None = None,
                          cps_name: str = "shift",
                          max_stages: int = 64,
                          ) -> list[ClassSchedule]:
    """Per-class schedules: each class's collective over its own active
    members.  Classes with fewer than two active members get no
    schedule (their collective is vacuous -- ``ISO002``)."""
    active_mask = None
    if active is not None:
        active_mask = np.zeros(types.num_endports, dtype=bool)
        active_mask[np.asarray(active, dtype=np.int64)] = True
    out: list[ClassSchedule] = []
    for ci, name in enumerate(types.type_names):
        ports = types.ports_of(name)
        if active_mask is not None:
            ports = ports[active_mask[ports]]
        if len(ports) < 2:
            continue
        if cps_name == "shift":
            cps = _sampled_shift(len(ports), max_stages)
        else:
            cps = by_name(cps_name, len(ports))
        out.append(ClassSchedule(name=name, cls=ci, ports=ports, cps=cps))
    return out


def routing_ranks(routing_name: str, num_endports: int,
                  types: NodeTypeMap | None,
                  active: np.ndarray | None = None,
                  ) -> tuple[np.ndarray | None, bool]:
    """The routing-index vector the named engine applies eq. (1) to.

    Returns ``(ridx, known)``: ``ridx`` is ``None`` for the identity
    ranking, ``known`` is False when the engine's rank function is not
    expressible (random/minhop/ftree tables) -- the symbolic engine and
    the balance lint then do not apply.
    """
    if routing_name == "typeaware":
        return typed_ranks(num_endports, types, active), True
    if routing_name in ("", "dmodk"):
        if active is None:
            return None, True
        return dense_ranks(num_endports, active), True
    return None, False


def _stage_flows_at(schedules: list[ClassSchedule], k: int,
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Aligned stage ``k`` of every class, concatenated:
    ``(src, dst, flow_class)`` over end-ports."""
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    fcs: list[np.ndarray] = []
    for cs in schedules:
        if k >= len(cs.cps.stages):
            continue
        src, dst = stage_flows(cs.cps.stages[k], cs.ports)
        if not len(src):
            continue
        srcs.append(src)
        dsts.append(dst)
        fcs.append(np.full(len(src), cs.cls, dtype=np.int64))
    if not srcs:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    return np.concatenate(srcs), np.concatenate(dsts), np.concatenate(fcs)


def _class_loads(engine: str, spec: PGFTSpec | None,
                 tables: ForwardingTables | None,
                 src: np.ndarray, dst: np.ndarray, fc: np.ndarray,
                 num_classes: int, ridx: np.ndarray | None,
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Sparse per-class link loads of one aligned stage, via the
    selected engine: ``(links, loads)`` with ``loads[c, k]`` the
    class-``c`` flow count on ``links[k]``."""
    if engine == "symbolic":
        assert spec is not None
        return symbolic_class_loads(spec, src, dst, fc, num_classes, ridx)
    assert tables is not None
    dense = stage_class_link_loads(tables, src, dst, fc, num_classes)
    links = np.flatnonzero(dense.sum(axis=0))
    return links, dense[:, links]


class IsolationPass(CheckPass):
    """Per-traffic-class contention certification, cross-class
    interference bounding and type-aware routing lint (``ISO0xx``)."""

    name = "isolation"

    def __init__(self, types: NodeTypeMap | None = None,
                 cps_name: str = "shift",
                 max_stages: int = 64,
                 bound: int | None = None,
                 engine: str = "auto",
                 check_conformance: bool = True,
                 fault_units: str | None = None,
                 fault_samples: int = 4,
                 fault_strategy: str = "balanced") -> None:
        if engine not in ISOLATION_ENGINES:
            raise ValueError(f"unknown isolation engine {engine!r}; "
                             f"known: {ISOLATION_ENGINES}")
        self.types = types
        self.cps_name = cps_name
        self.max_stages = max_stages
        self.bound = bound
        self.engine = engine
        self.check_conformance = check_conformance
        self.fault_units = fault_units
        self.fault_samples = fault_samples
        self.fault_strategy = fault_strategy

    # -- engine / input resolution ----------------------------------------
    def _resolve_types(self, ctx: CheckContext,
                       report: DiagnosticReport) -> NodeTypeMap:
        types = self.types if self.types is not None \
            else ctx.fabric.node_types
        if types is None:
            report.add(Diagnostic(
                code="ISO010",
                message="fabric carries no node-type map: all "
                        f"{ctx.fabric.num_endports} end-ports are untyped; "
                        "analysing as one homogeneous class (tag types via "
                        "Fabric.node_types or --types)"))
            types = NodeTypeMap.uniform(ctx.fabric.num_endports)
        return types

    def _resolve_engine(self, ctx: CheckContext, ridx_known: bool) -> str:
        spec = ctx.fabric.spec
        symbolic_ok = spec is not None and ridx_known
        enumerate_ok = ctx.tables is not None
        if self.engine == "symbolic":
            return "symbolic" if symbolic_ok else "none"
        if self.engine == "enumerate":
            return "enumerate" if enumerate_ok else "none"
        if symbolic_ok:
            return "symbolic"
        if enumerate_ok:
            return "enumerate"
        return "none"

    # -- the pass ----------------------------------------------------------
    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        types = self._resolve_types(ctx, report)
        spec = ctx.fabric.spec
        N = ctx.fabric.num_endports
        ridx, ridx_known = routing_ranks(ctx.routing_name, N, types,
                                         ctx.active)
        engine = self._resolve_engine(ctx, ridx_known)
        if engine == "none":
            report.add(Diagnostic(
                code="ISO090",
                message="isolation analysis skipped: the symbolic engine "
                        "needs a PGFT spec and a D-Mod-K-family routing "
                        f"({ctx.routing_name or 'dmodk'!r} given), the "
                        "enumerating engine needs materialised tables"))
            return

        schedules = build_class_schedules(types, active=ctx.active,
                                          cps_name=self.cps_name,
                                          max_stages=self.max_stages)
        scheduled = {cs.cls for cs in schedules}
        counts = types.counts()
        for ci, name in enumerate(types.type_names):
            if ci not in scheduled and counts[name] > 0:
                report.add(Diagnostic(
                    code="ISO002",
                    message=f"class {name!r} has fewer than two active "
                            "members; its own collective is vacuous and "
                            "certifies trivially"))

        if ridx_known:
            self._check_balance(types, schedules, ridx, report)
        if self.check_conformance:
            self._check_conformance(ctx, types, report)

        worst, flows, inter, combined, violations = self._account(
            ctx, engine, spec, types, schedules, ridx, report)

        if self.bound is not None:
            self._check_bound(types, inter, report)

        certs = self._certify(ctx, engine, spec, types, schedules, worst,
                              flows, inter)
        ctx.artifacts.setdefault("certificates", []).extend(certs)

        degraded: list[dict[str, Any]] = []
        if self.fault_units is not None and ctx.tables is not None:
            degraded = self._check_degraded(ctx, types, schedules, worst,
                                            report)

        C = types.num_types
        inter_json = {
            types.type_names[a]: {
                types.type_names[b]: int(inter[a, b])
                for b in range(C) if b != a}
            for a in range(C)}
        cross = max((int(inter[a, b]) for a in range(C) for b in range(C)
                     if a != b), default=0)
        summary: dict[str, Any] = {
            "engine": engine,
            "routing": ctx.routing_name or "dmodk",
            "cps": self.cps_name,
            "classes": counts,
            "per_class_worst": {cs.name: int(worst[cs.cls])
                                for cs in schedules},
            "per_class_flows": {cs.name: int(flows[cs.cls])
                                for cs in schedules},
            "interference": inter_json,
            "cross_class_bound": cross,
            "max_combined_load": combined,
            "bound": self.bound,
            "certified": len(certs),
            "refuted": len(violations),
            "degraded": degraded,
        }
        ctx.artifacts["isolation"] = summary
        report.add(Diagnostic(
            code="ISO090",
            message=(f"isolation [{engine}]: "
                     f"{len(schedules)} class(es) analysed "
                     f"({', '.join(f'{k}={v}' for k, v in sorted(counts.items()))}); "
                     f"{len(certs)} certified, {len(violations)} refuted; "
                     f"cross-class interference bound {cross}, "
                     f"combined worst link load {combined}"),
            data=summary))

    # -- accounting --------------------------------------------------------
    def _account(self, ctx: CheckContext, engine: str,
                 spec: PGFTSpec | None, types: NodeTypeMap,
                 schedules: list[ClassSchedule],
                 ridx: np.ndarray | None, report: DiagnosticReport,
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int,
                            dict[int, dict[str, Any]]]:
        """One pass over the aligned stages: per-class worst link loads,
        flow counts, the interference matrix, the combined worst load,
        and the first counterexample per refuted class (``ISO001``)."""
        C = types.num_types
        worst = np.zeros(C, dtype=np.int64)
        flows = np.zeros(C, dtype=np.int64)
        inter = np.zeros((C, C), dtype=np.int64)
        combined = 0
        violations: dict[int, dict[str, Any]] = {}
        num_stages = max((len(cs.cps.stages) for cs in schedules), default=0)
        for k in range(num_stages):
            src, dst, fc = _stage_flows_at(schedules, k)
            if not len(src):
                continue
            flows += np.bincount(fc, minlength=C)
            links, loads = _class_loads(engine, spec, ctx.tables, src, dst,
                                        fc, C, ridx)
            if not len(links):
                continue
            combined = max(combined, int(loads.sum(axis=0).max()))
            stage_worst = loads.max(axis=1)
            worst = np.maximum(worst, stage_worst)
            for a in range(C):
                occupied = loads[a] >= 1
                if occupied.any():
                    inter[a] = np.maximum(inter[a],
                                          loads[:, occupied].max(axis=1))
            for c in np.flatnonzero(stage_worst > 1):
                if int(c) in violations:
                    continue
                violations[int(c)] = self._violation(
                    ctx, engine, spec, types, int(c), k, src, dst, fc,
                    links, loads, ridx, report)
        return worst, flows, inter, combined, violations

    def _violation(self, ctx: CheckContext, engine: str,
                   spec: PGFTSpec | None, types: NodeTypeMap, c: int,
                   stage: int, src: np.ndarray, dst: np.ndarray,
                   fc: np.ndarray, links: np.ndarray, loads: np.ndarray,
                   ridx: np.ndarray | None, report: DiagnosticReport,
                   ) -> dict[str, Any]:
        """Emit ``ISO001`` with the class's first counterexample: the
        lowest-id link at the class's maximum load, plus the colliding
        same-class pairs."""
        load = int(loads[c].max())
        gp = int(links[loads[c] == load].min())
        if engine == "symbolic":
            assert spec is not None
            flow_idx, gports = symbolic_flow_links(spec, src, dst, ridx)
            loc = symbolic_link_loc(spec, gp, stage=stage)
        else:
            assert ctx.tables is not None
            flow_idx, gports = walk_flow_links(ctx.tables, src, dst)
            loc = link_loc(ctx.fabric, gp, stage=stage)
        on_link = np.unique(
            flow_idx[(gports == gp) & (fc[flow_idx] == c)])
        name = types.type_names[c]
        payload = {
            "class": name, "stage": stage, "gport": gp, "link_load": load,
            **colliding_pairs_payload(src, dst, on_link),
        }
        report.add(Diagnostic(
            code="ISO001", loc=loc,
            message=(f"class {name!r} is not contention-free over its own "
                     f"{self.cps_name} collective: stage {stage} places "
                     f"{load} concurrent class-{name} flows on one "
                     f"directed link under "
                     f"{ctx.routing_name or 'dmodk'} routing "
                     "(type-aware routing restores per-class density)"),
            data=payload))
        return payload

    # -- lint sub-checks ---------------------------------------------------
    def _check_balance(self, types: NodeTypeMap,
                       schedules: list[ClassSchedule],
                       ridx: np.ndarray | None,
                       report: DiagnosticReport) -> None:
        """``ISO011``: each class's routing indices must be consecutive
        (the precondition of the paper's lemmas, applied per class)."""
        for cs in schedules:
            r = np.arange(types.num_endports,
                          dtype=np.int64)[cs.ports] if ridx is None \
                else np.asarray(ridx, dtype=np.int64)[cs.ports]
            gaps = np.flatnonzero(np.diff(r) != 1)
            if not len(gaps):
                continue
            g = int(gaps[0])
            report.add(Diagnostic(
                code="ISO011",
                loc=Loc(lid=int(cs.ports[g + 1])),
                message=(f"class {cs.name!r} routing indices are not "
                         f"consecutive under the routing in effect: "
                         f"{len(gaps)} gap(s), first between members "
                         f"{int(cs.ports[g])} (index {int(r[g])}) and "
                         f"{int(cs.ports[g + 1])} (index {int(r[g + 1])}); "
                         "eq. (1) no longer guarantees this class's own "
                         "collective -- route type-aware"),
                data={"class": cs.name, "gaps": int(len(gaps)),
                      "first_gap_ports": [int(cs.ports[g]),
                                          int(cs.ports[g + 1])]}))

    def _check_conformance(self, ctx: CheckContext, types: NodeTypeMap,
                           report: DiagnosticReport) -> None:
        """``ISO020``: tables claiming ``typeaware`` must equal the
        per-type closed form entry for entry."""
        if ctx.routing_name != "typeaware" or ctx.tables is None \
                or ctx.fabric.spec is None:
            return
        want = route_typeaware(ctx.fabric, types, active=ctx.active)
        bad = np.flatnonzero(
            (ctx.tables.switch_out != want.switch_out).any(axis=1))
        host_bad = 0
        if ctx.tables.host_up is not None and want.host_up is not None:
            host_bad = int((ctx.tables.host_up != want.host_up).sum())
        if not len(bad) and not host_bad:
            return
        loc = Loc()
        if len(bad):
            node = ctx.fabric.num_endports + int(bad[0])
            loc = Loc(switch=ctx.fabric.node_names[node])
        report.add(Diagnostic(
            code="ISO020", loc=loc,
            message=(f"tables claim 'typeaware' but diverge from the "
                     f"per-type closed form: {len(bad)} switch(es) "
                     f"and {host_bad} host entr(ies) differ; the fabric "
                     "is not routed for its node-type map"),
            data={"switches_differing": int(len(bad)),
                  "host_entries_differing": host_bad}))

    def _check_bound(self, types: NodeTypeMap, inter: np.ndarray,
                     report: DiagnosticReport) -> None:
        """``ISO012``: cross-class link sharing above the declared
        interference bound."""
        assert self.bound is not None
        C = types.num_types
        for a in range(C):
            for b in range(C):
                if a == b or inter[a, b] <= self.bound:
                    continue
                na, nb = types.type_names[a], types.type_names[b]
                report.add(Diagnostic(
                    code="ISO012",
                    message=(f"cross-class interference above bound: up to "
                             f"{int(inter[a, b])} class-{nb!r} flow(s) "
                             f"share a directed link with class {na!r} "
                             f"traffic (declared bound {self.bound})"),
                    data={"victim": na, "aggressor": nb,
                          "interference": int(inter[a, b]),
                          "bound": self.bound}))

    # -- certificates ------------------------------------------------------
    def _certify(self, ctx: CheckContext, engine: str,
                 spec: PGFTSpec | None, types: NodeTypeMap,
                 schedules: list[ClassSchedule], worst: np.ndarray,
                 flows: np.ndarray, inter: np.ndarray,
                 ) -> list[dict[str, Any]]:
        certs: list[dict[str, Any]] = []
        C = types.num_types
        for cs in schedules:
            if worst[cs.cls] > 1 or flows[cs.cls] == 0:
                continue
            cross = max((int(inter[cs.cls, b]) for b in range(C)
                         if b != cs.cls), default=0)
            cert: dict[str, Any] = {
                "kind": "traffic-class-isolation-certificate",
                "version": CERTIFICATE_VERSION,
                "certificate_kind": "symbolic" if engine == "symbolic"
                                    else "enumerated",
                "case": f"isolation/{self.cps_name}/{cs.name}",
                "topology": str(spec) if spec is not None else None,
                "num_endports": int(ctx.fabric.num_endports),
                "routing": ctx.routing_name or "dmodk",
                "node_type": cs.name,
                "class_size": int(len(cs.ports)),
                "cps": cs.cps.name,
                "num_stages": len(cs.cps.stages),
                "num_flows": int(flows[cs.cls]),
                "max_link_load": int(worst[cs.cls]),
                "cross_class_interference": cross,
                "types_digest": types_digest(types),
                "cps_digest": cps_digest(cs.cps),
                "placement_digest": placement_digest(cs.ports),
                "active_digest": active_digest(ctx.fabric.num_endports,
                                               ctx.active),
                "verdict": "contention-free",
            }
            if spec is not None:
                cert["spec_digest"] = spec_digest(spec)
            if ctx.tables is not None and engine == "enumerate":
                cert["tables_digest"] = tables_digest(ctx.tables)
            certs.append(cert)
        return certs

    # -- degraded-mode composition ----------------------------------------
    def _check_degraded(self, ctx: CheckContext, types: NodeTypeMap,
                        schedules: list[ClassSchedule], healthy: np.ndarray,
                        report: DiagnosticReport) -> list[dict[str, Any]]:
        """``ISO030``: sample single-fault units, repair, and re-derive
        the per-class worst loads by enumeration on the repaired tables
        -- a class losing its healthy contention-freedom is an isolation
        regression the healthy certificate does not cover."""
        tables = ctx.tables
        assert tables is not None
        units = enumerate_fault_units(ctx.fabric, units=self.fault_units
                                      or "cable",
                                      include_host_cables=False)
        if not units:
            return []
        take = np.unique(np.linspace(0, len(units) - 1,
                                     num=min(self.fault_samples, len(units)),
                                     dtype=np.int64))
        used = np.unique(np.concatenate([cs.ports for cs in schedules])) \
            if schedules else np.empty(0, dtype=np.int64)
        C = types.num_types
        num_stages = max((len(cs.cps.stages) for cs in schedules), default=0)
        out: list[dict[str, Any]] = []
        for ui in take:
            unit = units[int(ui)]
            degraded = ctx.fabric.with_failed_cables(
                np.asarray(unit.gports, dtype=np.int64))
            rep = repair_tables(tables, degraded,
                                strategy=self.fault_strategy)
            lost = sorted(set(rep.unreachable) & set(used.tolist()))
            if lost:
                out.append({"fault": unit.label, "verdict": "disconnected",
                            "lost": [int(x) for x in lost]})
                continue
            dworst = np.zeros(C, dtype=np.int64)
            for k in range(num_stages):
                src, dst, fc = _stage_flows_at(schedules, k)
                if not len(src):
                    continue
                dense = stage_class_link_loads(rep.tables, src, dst, fc, C)
                dworst = np.maximum(dworst, dense.max(axis=1))
            regressed = [cs for cs in schedules
                         if dworst[cs.cls] > max(int(healthy[cs.cls]), 1)]
            out.append({
                "fault": unit.label,
                "verdict": "regressed" if regressed else "isolated",
                "per_class_worst": {cs.name: int(dworst[cs.cls])
                                    for cs in schedules}})
            for cs in regressed:
                report.add(Diagnostic(
                    code="ISO030",
                    loc=link_loc(ctx.fabric, int(unit.gports[0])),
                    message=(f"fault [{unit.label}] + "
                             f"{self.fault_strategy} repair breaks class "
                             f"{cs.name!r} isolation: its own collective's "
                             f"worst link load rises from "
                             f"{int(healthy[cs.cls])} to "
                             f"{int(dworst[cs.cls])}"),
                    data={"fault": unit.label, "class": cs.name,
                          "healthy_worst": int(healthy[cs.cls]),
                          "degraded_worst": int(dworst[cs.cls])}))
        return out
