"""Diagnostic framework for the static fabric analyzer.

Every finding of :mod:`repro.check` is a :class:`Diagnostic`: a stable
code, a severity, a human-readable message and a structured source
location (switch / port / destination LID / schedule stage).  Codes are
grouped by subsystem:

* ``FAB0xx`` -- wiring lint (cables, levels, names),
* ``RTE0xx`` -- forwarding-table lint (reachability, up*/down*, CDG,
  D-Mod-K conformance, balance),
* ``SCH0xx`` -- collective-schedule lint (placements, permutation
  stages, displacement structure),
* ``CFC0xx`` -- contention-freedom certification counterexamples,
* ``FLT0xx`` -- fault-schedule lint (events must reference live cables
  and real switches; dead windows must nest sensibly),
* ``SRV0xx`` -- certification-service outcomes (:mod:`repro.serve`):
  shedding, degradation, quarantine, deadline kills, journal replay.

The full catalogue lives in :data:`CODES` (rendered into
``docs/CHECKS.md``); every diagnostic emitted anywhere in the analyzer
must use a registered code -- the test suite enforces this.

Reports aggregate diagnostics and render as text (one line per finding,
compiler style) or JSON (machine-readable, used by CI and the
certificate tooling).  The process exit code of the CLI derives from
:meth:`DiagnosticReport.exit_code`: 0 clean, 1 warnings only, 2 errors.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = [
    "Severity",
    "Loc",
    "Diagnostic",
    "DiagnosticReport",
    "CODES",
    "describe_code",
]


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering matters (``ERROR > WARNING > INFO``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


#: code -> (default severity, one-line cause/fix description).
#: ``docs/CHECKS.md`` is generated from this table; keep the two in sync
#: via ``tests/check/test_diagnostics.py``.
CODES: dict[str, tuple[Severity, str]] = {
    # -- FAB0xx: wiring ------------------------------------------------------
    "FAB001": (Severity.ERROR,
               "Asymmetric cable: port_peer[port_peer[x]] != x. The wiring "
               "arrays were edited by hand; rebuild via Fabric.from_links."),
    "FAB002": (Severity.ERROR,
               "Duplicate node name (GUID). Rename the node in the topology "
               "file; names are the node identity for LFT dumps."),
    "FAB003": (Severity.ERROR,
               "Cable spans non-adjacent levels (level skip or same-level "
               "link). Fat-tree cables must connect level l to l+1."),
    "FAB004": (Severity.WARNING,
               "Dangling switch port (no cable). Expected on degraded or "
               "sub-allocated fabrics; an error when a PGFT spec declares "
               "the port should be wired."),
    "FAB005": (Severity.ERROR,
               "Wiring violates the declared PGFT tuple (parallel-port "
               "connection rule). Re-generate the fabric or fix the spec "
               "line of the topology file."),
    "FAB006": (Severity.ERROR,
               "End-port has no cable: the host is unreachable by "
               "construction. Remove it from the file or wire it up."),
    # -- RTE0xx: routing -----------------------------------------------------
    "RTE001": (Severity.ERROR,
               "Unreachable destination: some (src, dst) pair dead-ends "
               "(a -1 LFT entry on the route). Re-route or repair the "
               "tables (repro.routing.repair)."),
    "RTE002": (Severity.ERROR,
               "Forwarding loop: a route exceeds the tree diameter without "
               "reaching its destination."),
    "RTE010": (Severity.ERROR,
               "up*/down* violation: a route ascends after descending (a "
               "valley). Deadlock-prone; fix the offending LFT entries."),
    "RTE020": (Severity.ERROR,
               "Channel-dependency cycle: the routed fabric can deadlock "
               "under credit flow control. The message names one cycle."),
    "RTE030": (Severity.ERROR,
               "D-Mod-K conformance mismatch: an LFT entry differs from the "
               "closed form of eq. (1). The tables are not the D-Mod-K "
               "tables they claim to be."),
    "RTE040": (Severity.WARNING,
               "Down-going link serves more than one destination (theorem-2 "
               "violation on RLFTs): a symptom of contention-prone routing."),
    "RTE041": (Severity.WARNING,
               "Up-port destination imbalance: destinations spread unevenly "
               "over a switch's up ports (D-Mod-K is perfectly even)."),
    "RTE050": (Severity.WARNING,
               "Non-minimal forwarding entry: a next hop fails to reduce "
               "the BFS distance (detour or repair leftover)."),
    # -- SCH0xx: schedules ---------------------------------------------------
    "SCH001": (Severity.ERROR,
               "Placement maps two ranks to the same end-port. Fix the "
               "rank_to_port vector."),
    "SCH002": (Severity.ERROR,
               "Placement references an end-port outside the fabric."),
    "SCH010": (Severity.WARNING,
               "Stage is not a partial permutation: a rank sends (or "
               "receives) twice in one stage, guaranteeing injection/"
               "ejection contention."),
    "SCH020": (Severity.WARNING,
               "Stage displacement is not constant (paper observation 1 "
               "violated): contention freedom under D-Mod-K is no longer "
               "guaranteed by the theorems."),
    # -- CFC0xx: certification ----------------------------------------------
    "CFC001": (Severity.ERROR,
               "Contention counterexample: a stage places two or more "
               "concurrent flows on one directed link. The location names "
               "the stage and link; data lists the colliding pairs."),
    "CFC002": (Severity.INFO,
               "Vacuous certificate: the schedule produced no flows (empty "
               "stages or ranks all on one port)."),
    # -- FLT0xx: fault schedules ---------------------------------------------
    "FLT001": (Severity.ERROR,
               "Fault event references a global port outside the fabric. "
               "The schedule was written for a different topology; regenerate "
               "it against this fabric."),
    "FLT002": (Severity.ERROR,
               "Fault event references a port with no cable attached: there "
               "is nothing there to fail. Name either end of a live cable."),
    "FLT003": (Severity.ERROR,
               "switch_down references a node outside the fabric."),
    "FLT004": (Severity.WARNING,
               "switch_down names a host node, not a switch. This only "
               "disconnects that host's uplink; use link_down on the uplink "
               "if that is what you meant."),
    "FLT005": (Severity.WARNING,
               "link_up without a matching open link_down on that cable: "
               "the event is a no-op (the engines ignore it)."),
    "FLT006": (Severity.WARNING,
               "Redundant fault: the cable is already down (or its switch "
               "already died) at this event's time, so it changes nothing."),
    "FLT007": (Severity.WARNING,
               "Flaky window entirely inside a dead window of the same "
               "cable: no packet can cross it, so the loss can never fire."),
    # -- SYM0xx: symbolic verification ---------------------------------------
    "SYM001": (Severity.ERROR,
               "Symbolic contention counterexample: the closed-form link "
               "residues of eq. (1) place two or more concurrent flows on "
               "one directed link. Same payload shape as CFC001, derived "
               "without materialising forwarding tables."),
    "SYM002": (Severity.INFO,
               "Vacuous symbolic certificate: the schedule produced no "
               "flows (empty stages or ranks all on one port)."),
    "SYM010": (Severity.WARNING,
               "Symbolic engine not applicable: the fabric carries no PGFT "
               "spec or the tables under test are not D-Mod-K. Use the "
               "enumerating certifier (--engine enumerate) instead."),
    "SYM090": (Severity.ERROR,
               "Differential engine disagreement: the symbolic and "
               "enumerating certifiers reached different verdicts or "
               "counterexamples for the same case. One of the engines (or "
               "the tables) is wrong; this is always a bug worth a report."),
    # -- RQL0xx: degraded-fabric routing quality (fault-space sweep) ---------
    "RQL001": (Severity.ERROR,
               "Repair left a physically reachable destination unrouted: "
               "the degraded fabric still connects every surviving host, "
               "but some live switch has no forwarding entry toward one. "
               "A repair-strategy bug; the data lists the destinations."),
    "RQL002": (Severity.WARNING,
               "Fault disconnects end-ports (host uplink cut or leaf "
               "switch death): no repair can restore them, so contention "
               "certification of the full job is skipped. The repair "
               "still routes the surviving fabric."),
    "RQL010": (Severity.WARNING,
               "Surviving-up-port balance broken: after repair, some "
               "switch spreads destinations unevenly over its live up "
               "ports (max load above the ceil bound). The balanced "
               "repair strategy meets the bound; naive round-robin "
               "may not."),
    "RQL011": (Severity.WARNING,
               "Repair inflates the worst-link destination multiplicity "
               "beyond the configured bound (default: healthy maximum "
               "plus one per fault unit -- the pigeonhole floor). "
               "Detours are stacking onto already-loaded links."),
    "RQL020": (Severity.WARNING,
               "Previously held contention certificate invalidated: the "
               "healthy (fabric, CPS, placement) case was certified "
               "contention-free, but under this fault the repaired "
               "routing places two or more concurrent flows on one "
               "directed link. The data carries the minimal "
               "counterexample (stage, link, colliding pairs)."),
    "RQL030": (Severity.ERROR,
               "Repaired route descends and then ascends again (an "
               "up*/down* valley): deadlock-prone under credit flow "
               "control. BFS-minimal repairs never do this on a "
               "connected fat tree; seeing it means the repair or the "
               "degraded wiring is broken."),
    "RQL090": (Severity.INFO,
               "Fault-space sweep summary: faults covered, verdict "
               "counts, certified fraction and the engine/strategy used. "
               "Also reports a sweep skipped for a structural reason "
               "(e.g. the healthy schedule is already refuted)."),
    # -- SRV0xx: certification service (repro.serve) -------------------------
    "SRV001": (Severity.ERROR,
               "Poison request quarantined: certifying this request digest "
               "crashed its worker process repeatedly (poison threshold "
               "reached). The digest is quarantined for the life of the "
               "service; identical submissions are refused immediately "
               "instead of crashing more workers."),
    "SRV002": (Severity.WARNING,
               "Request shed at admission: the service queue is over its "
               "high-water mark. The request was NOT accepted; resubmit "
               "after the suggested retry_after_s backoff."),
    "SRV003": (Severity.ERROR,
               "Deadline exceeded: the request outlived its wall-clock "
               "budget and its worker was cancelled (killed and respawned). "
               "Deadline kills are terminal -- the request is not retried; "
               "resubmit with a larger deadline_s."),
    "SRV004": (Severity.WARNING,
               "Graceful degradation: the service is under queue pressure, "
               "so a 'both'-engine differential request was downgraded to "
               "the symbolic engine alone. The certificate is tagged "
               "degraded; resubmit when the queue drains for the full "
               "differential verdict."),
    "SRV005": (Severity.ERROR,
               "Malformed request: the payload failed protocol validation "
               "(unknown topology/engine/kind, conflicting fields, or test "
               "hooks without --allow-test-hooks). The request was never "
               "accepted; nothing is journaled or retried."),
    "SRV006": (Severity.INFO,
               "Journal replay: this request was accepted by a previous "
               "service process that died before finishing it; the restart "
               "re-enqueued it from the journal and completed it."),
    "SRV007": (Severity.ERROR,
               "Service shutdown: the service stopped before this accepted "
               "request could run. The request remains journaled; a "
               "restart on the same journal will replay and complete it."),
    "SRV008": (Severity.ERROR,
               "Worker crash budget exhausted: the request's worker died "
               "repeatedly (crash or injected kill) and the seeded "
               "backoff requeue ran out of retries before the poison "
               "threshold tripped. Resubmit; if the crash follows the "
               "digest, quarantine (SRV001) will catch it."),
    "SRV090": (Severity.INFO,
               "Service status summary: queue depth, in-flight count, "
               "certs/sec, latency percentiles and supervision counters "
               "at the time of the status request."),
    # -- ISO0xx: traffic-class isolation -------------------------------------
    "ISO001": (Severity.ERROR,
               "Per-class contention counterexample: a stage of a traffic "
               "class's own collective places two or more of its concurrent "
               "flows on one directed link. The routing in effect does not "
               "isolate the class; route type-aware (per-type dense ranks)."),
    "ISO002": (Severity.INFO,
               "Vacuous class: a traffic class has fewer than two active "
               "members, so its own collective produces no flows and "
               "certifies trivially."),
    "ISO010": (Severity.WARNING,
               "Untyped end-ports: the fabric carries no node-type map, so "
               "the isolation analysis degenerates to one homogeneous "
               "class. Tag the population (Fabric.node_types / --types) for "
               "a meaningful per-class verdict."),
    "ISO011": (Severity.WARNING,
               "Per-type balance violation: a class's routing indices are "
               "not consecutive under the routing in effect, so eq. (1) no "
               "longer guarantees the class's own collective. Type-aware "
               "routing restores per-class rank density by construction."),
    "ISO012": (Severity.WARNING,
               "Cross-class interference above the declared bound: more "
               "flows of another class share a directed link with the "
               "victim class's traffic than --iso-bound allows."),
    "ISO020": (Severity.ERROR,
               "Type-conformance mismatch: the tables claim type-aware "
               "routing but differ from the per-type closed form of "
               "eq. (1). The fabric is not routed for its node-type map."),
    "ISO030": (Severity.WARNING,
               "Degraded-mode isolation regression: after a sampled fault "
               "and repair, a traffic class loses the per-class "
               "contention-freedom it had on the healthy fabric."),
    "ISO090": (Severity.INFO,
               "Isolation summary: classes analysed, per-class worst link "
               "loads, the cross-class interference matrix and bound, and "
               "certificates issued. Also reports an analysis skipped for "
               "a structural reason (no spec, no tables)."),
}


def describe_code(code: str) -> str:
    """One-line cause/fix description of a registered code."""
    return CODES[code][1]


@dataclass(frozen=True)
class Loc:
    """Structured source location of a finding.

    All fields are optional; ``render()`` prints only the set ones, in a
    stable order.  ``switch``/``port`` identify a directed link (global
    port id ``gport`` owned by ``switch`` at local ``port``), ``lid`` is
    a destination end-port index, ``stage`` indexes into a CPS.
    """

    switch: str | None = None
    port: int | None = None
    gport: int | None = None
    lid: int | None = None
    stage: int | None = None
    level: int | None = None
    node: str | None = None

    def render(self) -> str:
        parts = []
        for name in ("node", "switch", "port", "gport", "lid", "stage",
                     "level"):
            val = getattr(self, name)
            if val is not None:
                parts.append(f"{name}={val}")
        return " ".join(parts)

    def to_json(self) -> dict[str, Any]:
        # dataclass __dict__ follows field definition order
        return {k: v for k, v in self.__dict__.items() if v is not None}  # det: ok


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a registered code, severity, message and location."""

    code: str
    message: str
    severity: Severity | None = None
    loc: Loc = field(default_factory=Loc)
    data: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")
        if self.severity is None:
            object.__setattr__(self, "severity", CODES[self.code][0])

    def render(self) -> str:
        where = self.loc.render()
        where = f" [{where}]" if where else ""
        return f"{self.code} {self.severity}:{where} {self.message}"

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }
        loc = self.loc.to_json()
        if loc:
            out["loc"] = loc
        if self.data:
            out["data"] = self.data
        return out


class DiagnosticReport:
    """An ordered collection of diagnostics with emitters.

    Passes append via :meth:`add`; ``max_diags_per_code`` caps how many
    findings of one code are *stored* (the counter keeps the true
    total, so summaries stay exact on badly broken fabrics).
    """

    def __init__(self, max_diags_per_code: int = 25) -> None:
        self.max_diags_per_code = max_diags_per_code
        self.diagnostics: list[Diagnostic] = []
        self.counts: dict[str, int] = {}

    def add(self, diag: Diagnostic) -> None:
        n = self.counts.get(diag.code, 0)
        self.counts[diag.code] = n + 1
        if n < self.max_diags_per_code:
            self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        for d in diags:
            self.add(d)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return sum(self.counts.values())

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> list[str]:
        """Distinct codes present, sorted."""
        return sorted(self.counts)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    @property
    def has_errors(self) -> bool:
        return any(d.severity >= Severity.ERROR for d in self.diagnostics)

    def exit_code(self) -> int:
        """0 clean/info, 1 warnings only, 2 any error."""
        worst = self.max_severity
        if worst is None or worst <= Severity.INFO:
            return 0
        return 2 if worst >= Severity.ERROR else 1

    # -- emitters ----------------------------------------------------------
    def render_text(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        for code in self.codes():
            hidden = self.counts[code] - len(self.by_code(code))
            if hidden > 0:
                lines.append(f"{code} note: {hidden} further finding(s) "
                             "suppressed (--max-diags)")
        if not lines:
            return "no findings"
        return "\n".join(lines)

    def to_json(self) -> list[dict[str, Any]]:
        return [d.to_json() for d in self.diagnostics]

    def summary(self) -> dict[str, Any]:
        return {
            "total": len(self),
            "errors": self.count(Severity.ERROR),
            "warnings": self.count(Severity.WARNING),
            "info": self.count(Severity.INFO),
            "codes": {c: self.counts[c] for c in self.codes()},
            "exit_code": self.exit_code(),
        }

    def dumps(self) -> str:
        return json.dumps(
            {"diagnostics": self.to_json(), "summary": self.summary()},
            indent=2,
        )
