"""Wiring lint (``FAB0xx``): is the physical fabric what it claims to be?

Checks run on the bare :class:`~repro.fabric.model.Fabric` -- no
forwarding tables needed:

* ``FAB001`` cable asymmetry (``port_peer`` is not an involution),
* ``FAB002`` duplicate node names (the GUID-collision analogue),
* ``FAB003`` cables that skip levels or connect equals (never valid in
  a levelled fat-tree),
* ``FAB004`` dangling switch ports (error when a PGFT spec says the
  port must be wired, warning otherwise),
* ``FAB006`` end-ports with no cable at all,
* ``FAB005`` wiring vs declared PGFT tuple: the parallel-port
  connection rule, verified structurally via
  :func:`~repro.topology.discover.discover_pgft`.
"""

from __future__ import annotations

import numpy as np

from ..topology.discover import DiscoveryError, discover_pgft
from .diagnostics import Diagnostic, DiagnosticReport, Loc, Severity
from .passes import CheckContext, CheckPass

__all__ = ["WiringLintPass", "SpecConformancePass"]


class WiringLintPass(CheckPass):
    """Structural cable checks: FAB001-FAB004, FAB006."""

    name = "wiring"

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        fab = ctx.fabric
        peer = fab.port_peer
        connected = np.flatnonzero(peer >= 0)

        # FAB001: symmetry of the cable relation.
        bad = connected[peer[peer[connected]] != connected]
        for gp in bad.tolist():
            owner = int(fab.port_owner[gp])
            report.add(Diagnostic(
                code="FAB001",
                message=(f"cable of port {gp} is asymmetric: far end "
                         f"{int(peer[gp])} points at {int(peer[peer[gp]])}"),
                loc=Loc(node=fab.node_names[owner], gport=gp,
                        port=int(fab.local_port(gp))),
            ))

        # FAB002: duplicate node names.
        seen: dict[str, int] = {}
        for v, name in enumerate(fab.node_names):
            if name in seen:
                report.add(Diagnostic(
                    code="FAB002",
                    message=(f"node name {name!r} used by nodes "
                             f"{seen[name]} and {v}"),
                    loc=Loc(node=name),
                ))
            else:
                seen[name] = v

        # FAB003: every cable must span exactly one level.
        lvl = fab.node_level
        src_lvl = lvl[fab.port_owner[connected]]
        dst_lvl = lvl[fab.peer_node[connected]]
        skewed = connected[np.abs(src_lvl - dst_lvl) != 1]
        for gp in skewed.tolist():
            if int(peer[gp]) < gp:   # report each cable once
                continue
            a = int(fab.port_owner[gp])
            b = int(fab.peer_node[gp])
            report.add(Diagnostic(
                code="FAB003",
                message=(f"cable {fab.node_names[a]}[{int(fab.local_port(gp))}]"
                         f" -- {fab.node_names[b]} connects level {int(lvl[a])}"
                         f" to level {int(lvl[b])}"),
                loc=Loc(node=fab.node_names[a], gport=gp,
                        level=int(lvl[a])),
            ))

        # FAB004 / FAB006: dangling ports.
        dangling = np.flatnonzero(peer < 0)
        host_sev = Severity.ERROR
        sw_sev = Severity.ERROR if fab.spec is not None else Severity.WARNING
        hosts_hit = set()
        for gp in dangling.tolist():
            owner = int(fab.port_owner[gp])
            if owner < fab.num_endports:
                hosts_hit.add(owner)
                continue
            report.add(Diagnostic(
                code="FAB004",
                severity=sw_sev,
                message=(f"switch port {fab.node_names[owner]}"
                         f"[{int(fab.local_port(gp))}] has no cable"),
                loc=Loc(switch=fab.node_names[owner], gport=gp,
                        port=int(fab.local_port(gp))),
            ))
        for owner in sorted(hosts_hit):
            # A host is only unreachable when *all* its ports are dead.
            ports = fab.ports_of(owner)
            if (peer[ports] < 0).all():
                report.add(Diagnostic(
                    code="FAB006",
                    severity=host_sev,
                    message=f"end-port {fab.node_names[owner]} has no cable",
                    loc=Loc(node=fab.node_names[owner], lid=owner),
                ))


class SpecConformancePass(CheckPass):
    """FAB005: the wiring must realise the declared PGFT tuple.

    Uses structural discovery (complete-bipartite sibling blocks with
    uniform parallel-cable counts), so crossed cables that preserve
    levels and port counts are still caught.
    """

    name = "spec-conformance"

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        fab = ctx.fabric
        if fab.spec is None:
            return
        try:
            found = discover_pgft(fab)
        except DiscoveryError as exc:
            report.add(Diagnostic(
                code="FAB005",
                message=f"wiring is not a valid PGFT: {exc}",
            ))
            return
        if found != fab.spec:
            report.add(Diagnostic(
                code="FAB005",
                message=(f"wiring realises {found}, but the fabric declares "
                         f"{fab.spec}"),
            ))
