"""Pass pipeline over the fabric model, forwarding tables and schedules.

The analyzer is organised like a compiler: an immutable-ish
:class:`CheckContext` (the "IR": fabric + tables + schedule cases) is
threaded through a sequence of :class:`CheckPass` objects, each of which
appends :class:`~repro.check.diagnostics.Diagnostic` findings to a
shared report and may publish *artifacts* (hop matrices, link-load
tensors, certificates) for later passes and callers.

Passes declare what they need (``needs_tables`` / ``needs_schedule``);
the pipeline skips passes whose inputs are absent, so one pipeline
definition serves both "lint this topology file" and "certify this full
(fabric, routing, schedule) triple".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..collectives.cps import CPS
from ..fabric.lft import ForwardingTables
from ..fabric.model import Fabric
from .diagnostics import DiagnosticReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.schedule import FaultSchedule

__all__ = [
    "ScheduleCase",
    "CheckContext",
    "CheckPass",
    "CheckResult",
    "Pipeline",
]


@dataclass(frozen=True)
class ScheduleCase:
    """One (CPS, placement) pair to lint/certify.

    ``placement`` is the ``rank_to_port`` vector (slots may hold ``-1``
    for the physical-placement semantics of partially populated jobs);
    ``label`` names the case in diagnostics and certificates.
    """

    cps: CPS
    placement: np.ndarray
    label: str = ""

    def name(self) -> str:
        return self.label or self.cps.name


@dataclass
class CheckContext:
    """Everything a pass may inspect.

    ``tables`` and ``schedule`` are optional -- wiring lint runs on a
    bare fabric.  ``routing_name`` is advisory metadata (which engine
    claims to have produced the tables); the D-Mod-K conformance pass
    keys off it.  ``active`` is the job's active end-port set for
    partially populated (Cont.-X) contexts: job-aware passes -- D-Mod-K
    conformance, the balance lints, the symbolic certifier -- evaluate
    against it instead of the full population.  ``faults`` is an
    optional :class:`~repro.faults.FaultSchedule` for the fault lint.
    ``artifacts`` is the inter-pass scratch space.
    """

    fabric: Fabric
    tables: ForwardingTables | None = None
    schedule: list[ScheduleCase] = field(default_factory=list)
    routing_name: str = ""
    active: np.ndarray | None = None
    faults: "FaultSchedule | None" = None
    artifacts: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def for_tables(cls, tables: ForwardingTables,
                   routing_name: str = "",
                   schedule: list[ScheduleCase] | None = None,
                   active: np.ndarray | None = None,
                   faults: "FaultSchedule | None" = None,
                   ) -> "CheckContext":
        return cls(fabric=tables.fabric, tables=tables,
                   schedule=list(schedule or []), routing_name=routing_name,
                   active=active, faults=faults)


class CheckPass:
    """Base class: subclasses set the class attributes and implement
    :meth:`run`, appending diagnostics to ``report``."""

    #: stable pass name (CLI ``--passes`` selector, JSON summary)
    name: str = "base"
    #: skip when ``ctx.tables`` is None
    needs_tables: bool = False
    #: skip when ``ctx.schedule`` is empty
    needs_schedule: bool = False
    #: skip when ``ctx.faults`` is None
    needs_faults: bool = False

    def applicable(self, ctx: CheckContext) -> bool:
        if self.needs_tables and ctx.tables is None:
            return False
        if self.needs_schedule and not ctx.schedule:
            return False
        if self.needs_faults and ctx.faults is None:
            return False
        return True

    def run(self, ctx: CheckContext, report: DiagnosticReport) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass
class CheckResult:
    """Outcome of a pipeline run: the findings plus published artifacts."""

    report: DiagnosticReport
    artifacts: dict[str, Any]
    passes_run: list[str]

    @property
    def certificates(self) -> list[dict[str, Any]]:
        """Machine-readable contention-freedom certificates (may be
        empty when certification was refuted or not requested)."""
        return self.artifacts.get("certificates", [])

    def exit_code(self) -> int:
        return self.report.exit_code()

    def to_json(self) -> dict[str, Any]:
        return {
            "tool": "repro.check",
            "version": 1,
            "passes": self.passes_run,
            "diagnostics": self.report.to_json(),
            "certificates": self.certificates,
            "summary": self.report.summary(),
        }


class Pipeline:
    """An ordered list of passes; running it yields a :class:`CheckResult`.

    Passes whose declared inputs are absent from the context are skipped
    (not errors): the same pipeline lints a bare fabric or certifies a
    fully populated context.
    """

    def __init__(self, passes: list[CheckPass]) -> None:
        self.passes = list(passes)

    def run(self, ctx: CheckContext,
            max_diags_per_code: int = 25) -> CheckResult:
        report = DiagnosticReport(max_diags_per_code=max_diags_per_code)
        ran: list[str] = []
        for p in self.passes:
            if not p.applicable(ctx):
                continue
            p.run(ctx, report)
            ran.append(p.name)
        return CheckResult(report=report, artifacts=ctx.artifacts,
                           passes_run=ran)
