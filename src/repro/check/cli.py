"""``python -m repro.check``: the static analyzer's command line.

Input is a topology -- by paper name (``--topo n324``), PGFT tuple
(``--spec "2; 18,18; 1,9; 1,2"``) or topology file (``--topofile``) --
optionally routed (``--routing``) and scheduled (``--cps``/``--order``).
Output is the diagnostic report (text, or ``--json`` for machines) plus
any contention-freedom certificates; the exit code reflects the worst
severity found (0 clean, 1 warnings, 2 errors).

Certification runs one of three engines (``--engine``): ``enumerate``
walks every stage through materialised tables, ``symbolic`` proves the
verdict from the D-Mod-K closed form without building tables at all
(the only option that scales to tens of thousands of end-ports), and
``both`` runs the two and raises ``SYM090`` if they ever disagree.

Examples::

    # certify the paper's headline configuration (exit 0, certificate)
    python -m repro.check --topo n324 --routing dmodk --cps shift

    # the same verdict from pure closed-form algebra, table-free
    python -m repro.check --topo rlft3-max36 --engine symbolic --cps shift

    # differential validation: both engines must agree bit for bit
    python -m repro.check --topo n324 --engine both --cps shift --order random

    # job-aware Cont.-X: exclude 10 random end-ports, dense-rank routing
    python -m repro.check --topo n324 --engine both --cps ring --exclude 10

    # multi-tenant isolation: tag 2 staggered storage ports per leaf,
    # certify each class's own collective + the cross-class bound
    python -m repro.check --topo n324 --types staggered:storage=2 \\
        --routing typeaware --engine symbolic --isolation

    # the same fabric type-blind: a real per-class counterexample (ISO001)
    python -m repro.check --topo n324 --types staggered:storage=2 \\
        --routing dmodk --engine symbolic --isolation

    # sweep every single cable/switch fault, certify each repaired fabric
    python -m repro.check --topo n324 --cps shift --exclude 36 --fault-space

    # the same findings as GitHub code-scanning input
    python -m repro.check --topo n324 --cps shift --format sarif

    # refute random routing with a named stage+link counterexample
    python -m repro.check --topo n324 --routing random --cps shift

    # lint a topology file, no routing
    python -m repro.check --topofile cluster.topo --routing none

    # the catalogue of diagnostic codes
    python -m repro.check --list-codes
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from ..collectives import by_name, hierarchical_recursive_doubling, shift
from ..collectives.cps import CPS
from ..fabric import build_fabric, parse_types
from ..fabric.lft import ForwardingTables
from ..fabric.model import Fabric
from ..fabric.topofile import load as load_topofile
from ..ordering import random_order, topology_order, topology_subset
from ..ordering.adversarial import adversarial_ring_order
from ..routing import (
    route_dmodk,
    route_ftree,
    route_minhop,
    route_random,
    route_typeaware,
)
from ..routing.repair import REPAIR_STRATEGIES
from ..topology import paper_topologies, pgft
from ..topology.spec import PGFTSpec
from . import CODES, ENGINES, PASS_ORDER, CheckContext, ScheduleCase, run_check
from .faultspace import FAULT_UNIT_KINDS, SWEEP_ENGINES
from .isolation import ISOLATION_ENGINES
from .sarif import build_line_map, dumps_sarif

FORMATS = ("text", "json", "sarif")

__all__ = ["main"]

ROUTERS = ("dmodk", "typeaware", "random", "minhop", "ftree", "none")
ORDERS = ("topology", "reversed", "random", "adversarial")


def _parse_spec(text: str) -> PGFTSpec:
    parts = [seg.strip() for seg in text.split(";")]
    if len(parts) != 4:
        raise SystemExit("--spec must be 'h; m1,..; w1,..; p1,..'")
    vec = lambda s: [int(x) for x in s.split(",")]  # noqa: E731
    return pgft(int(parts[0]), vec(parts[1]), vec(parts[2]), vec(parts[3]))


def _load_fabric(args: argparse.Namespace) -> Fabric:
    given = [x is not None for x in (args.topo, args.spec, args.topofile)]
    if sum(given) != 1:
        raise SystemExit("give exactly one of --topo / --spec / --topofile")
    if args.topofile is not None:
        fabric = load_topofile(args.topofile)
    elif args.spec is not None:
        fabric = build_fabric(_parse_spec(args.spec))
    else:
        topos = paper_topologies()
        if args.topo not in topos:
            raise SystemExit(f"unknown topology {args.topo!r}; available: "
                             f"{', '.join(sorted(topos))}")
        fabric = build_fabric(topos[args.topo])
    if args.types:
        try:
            fabric.node_types = parse_types(args.types, fabric.num_endports,
                                            spec=fabric.spec)
        except ValueError as exc:
            raise SystemExit(f"--types: {exc}") from exc
    return fabric


def _route(fabric: Fabric, args: argparse.Namespace,
           active: np.ndarray | None = None
           ) -> tuple[ForwardingTables | None, str]:
    name = args.routing
    if name == "none":
        return None, ""
    if name == "dmodk":
        return route_dmodk(fabric, active=active), "dmodk"
    if name == "typeaware":
        return route_typeaware(fabric, active=active), "typeaware"
    if name == "random":
        return route_random(fabric, seed=args.routing_seed), "random"
    if name == "ftree":
        return route_ftree(fabric), "ftree"
    if name == "minhop":
        return route_minhop(fabric, "roundrobin"), "minhop"
    raise SystemExit(f"unknown routing engine {name!r}")  # pragma: no cover


def _make_active(fabric: Fabric,
                 args: argparse.Namespace) -> np.ndarray | None:
    """Active end-port set for job-aware (Cont.-X) certification."""
    if not args.exclude:
        return None
    if args.exclude >= fabric.num_endports:
        raise SystemExit("--exclude must leave at least one active end-port")
    return topology_subset(fabric.num_endports, args.exclude,
                           seed=args.exclude_seed)


def _sampled_shift(n: int, max_stages: int) -> CPS:
    if n - 1 <= max_stages:
        return shift(n)
    step = (n - 1) // max_stages
    return shift(n, displacements=range(1, n, step))


def _make_cps(name: str, fabric: Fabric, args: argparse.Namespace,
              num_ranks: int | None = None) -> CPS:
    n = num_ranks if num_ranks is not None else fabric.num_endports
    if name == "recdbl-hier":
        if fabric.spec is None:
            raise SystemExit("recdbl-hier needs a PGFT spec")
        return hierarchical_recursive_doubling(fabric.spec)
    if name == "shift":
        return _sampled_shift(n, args.max_shift_stages)
    try:
        return by_name(name, n)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _make_order(fabric: Fabric, args: argparse.Namespace,
                active: np.ndarray | None = None) -> np.ndarray:
    n = fabric.num_endports
    if active is not None:
        # Dense ranks on the active ports only (partially populated job).
        ports = np.sort(np.asarray(active, dtype=np.int64))
        if args.order == "topology":
            return ports
        if args.order == "reversed":
            return ports[::-1].copy()
        if args.order == "random":
            rng = np.random.default_rng(args.order_seed)
            return rng.permutation(ports).astype(np.int64)
        raise SystemExit(f"--order {args.order} is not defined for "
                         "partially populated jobs (--exclude)")
    if args.order == "topology":
        return topology_order(n)
    if args.order == "reversed":
        return topology_order(n)[::-1].copy()
    if args.order == "random":
        return random_order(n, seed=args.order_seed)
    if args.order == "adversarial":
        if fabric.spec is None:
            raise SystemExit("adversarial order needs a PGFT spec")
        return adversarial_ring_order(fabric.spec)
    raise SystemExit(f"unknown order {args.order!r}")  # pragma: no cover


def _list_codes() -> None:
    for code, (sev, desc) in sorted(CODES.items()):
        print(f"{code}  {str(sev):7s} {desc}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="static fabric analyzer: wiring/routing/schedule lint "
                    "and contention-freedom certification",
    )
    src = parser.add_argument_group("input")
    src.add_argument("--topo", metavar="NAME",
                     help="paper topology name (e.g. n324)")
    src.add_argument("--spec", metavar="TUPLE",
                     help="PGFT tuple 'h; m1,..; w1,..; p1,..'")
    src.add_argument("--topofile", metavar="FILE",
                     help="topology file (repro.fabric.topofile format)")
    src.add_argument("--types", metavar="LAYOUT", default=None,
                     help="node-type layout: 'uniform[:NAME]', "
                          "'blocked:NAME=K[,NAME=K..]', 'per-leaf:NAME=K' "
                          "or 'staggered:NAME=K' (remainder is 'compute')")

    rt = parser.add_argument_group("routing")
    rt.add_argument("--routing", choices=ROUTERS, default="dmodk",
                    help="engine producing the tables under test "
                         "('none' = wiring lint only; default: %(default)s)")
    rt.add_argument("--routing-seed", type=int, default=0)

    sched = parser.add_argument_group("schedule")
    sched.add_argument("--cps", metavar="NAME[,NAME..]", default=None,
                       help="collective(s) to certify (Table-2 names or "
                            "'recdbl-hier'); omit to skip certification")
    sched.add_argument("--order", choices=ORDERS, default="topology",
                       help="rank placement (default: %(default)s)")
    sched.add_argument("--order-seed", type=int, default=0)
    sched.add_argument("--max-shift-stages", type=int, default=64,
                       help="sample the Shift CPS down to this many stages")
    sched.add_argument("--exclude", type=int, default=0, metavar="K",
                       help="Cont.-K: exclude K random end-ports and "
                            "certify the partially populated job with "
                            "job-aware (dense-active-rank) D-Mod-K")
    sched.add_argument("--exclude-seed", type=int, default=0)

    eng = parser.add_argument_group("certification engine")
    eng.add_argument("--engine", choices=ENGINES, default="enumerate",
                     help="'enumerate' walks materialised tables, "
                          "'symbolic' proves from the eq.-(1) closed form "
                          "without building tables, 'both' cross-checks "
                          "the two (default: %(default)s)")

    fs = parser.add_argument_group("fault-space sweep")
    fs.add_argument("--fault-space", action="store_true",
                    help="statically sweep the fault space: repair, "
                         "quality-score and re-certify every degraded "
                         "fabric (RQL0xx diagnostics)")
    fs.add_argument("--fault-units", choices=FAULT_UNIT_KINDS + ("both",),
                    default="both",
                    help="fail cables, whole switches, or both "
                         "(default: %(default)s)")
    fs.add_argument("--max-faults", type=int, default=1, metavar="K",
                    help="also sample combinations of up to K simultaneous "
                         "faults (default: %(default)s = singles only)")
    fs.add_argument("--fault-samples", type=int, default=16, metavar="N",
                    help="sampled combos per multi-fault size "
                         "(default: %(default)s)")
    fs.add_argument("--fault-seed", type=int, default=0)
    fs.add_argument("--repair", choices=REPAIR_STRATEGIES + ("auto",),
                    default="balanced",
                    help="repair under test; 'auto' picks the better "
                         "static score per fault (default: %(default)s)")
    fs.add_argument("--fault-engine", choices=SWEEP_ENGINES,
                    default="incremental",
                    help="'incremental' re-certifies via the symbolic "
                         "delta cache, 'cold' re-walks every flow "
                         "(default: %(default)s)")
    fs.add_argument("--load-bound", type=int, default=None, metavar="L",
                    help="RQL011 worst-link destination-multiplicity bound "
                         "(default: healthy max + faults per combo)")

    iso = parser.add_argument_group("traffic-class isolation")
    iso.add_argument("--isolation", action="store_true",
                     help="per-class contention certification + "
                          "cross-class interference bound over the "
                          "--types layout (ISO0xx diagnostics)")
    iso.add_argument("--iso-cps", metavar="NAME", default="shift",
                     help="collective each class runs concurrently "
                          "(default: %(default)s)")
    iso.add_argument("--iso-bound", type=int, default=None, metavar="B",
                     help="declared cross-class interference bound; "
                          "ISO012 when any class exceeds it")
    iso.add_argument("--iso-engine", choices=ISOLATION_ENGINES,
                     default="auto",
                     help="'symbolic' proves from the typed closed form, "
                          "'enumerate' walks the tables "
                          "(default: %(default)s)")
    iso.add_argument("--iso-fault-units",
                     choices=("none",) + FAULT_UNIT_KINDS + ("both",),
                     default="none",
                     help="also re-check class isolation on sampled "
                          "degraded fabrics (needs materialised tables; "
                          "default: %(default)s)")
    iso.add_argument("--iso-fault-samples", type=int, default=4, metavar="N",
                     help="degraded fabrics sampled per unit kind "
                          "(default: %(default)s)")

    out = parser.add_argument_group("output")
    out.add_argument("--format", choices=FORMATS, default=None,
                     help="report format (default: text); 'sarif' emits a "
                          "SARIF 2.1.0 log for GitHub code scanning")
    out.add_argument("--json", action="store_true",
                     help="machine-readable report on stdout "
                          "(alias for --format json)")
    out.add_argument("--cert-out", metavar="FILE", default=None,
                     help="write certificates (JSON list) to FILE")
    out.add_argument("--max-diags", type=int, default=25, metavar="N",
                     help="findings stored per code (default: %(default)s)")

    sel = parser.add_argument_group("pass selection")
    sel.add_argument("--passes", metavar="NAME[,NAME..]", default=None,
                     help=f"run only these passes; known: {', '.join(PASS_ORDER)}")
    sel.add_argument("--no-certify", action="store_true",
                     help="skip the contention-freedom certifier")
    sel.add_argument("--updown-sample", type=int, default=250_000,
                     help="max (src,dst) pairs for the up*/down* pass")

    parser.add_argument("--list-codes", action="store_true",
                        help="print the diagnostic-code catalogue and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_codes:
        _list_codes()
        return 0

    fabric = _load_fabric(args)
    active = _make_active(fabric, args)
    if args.engine == "symbolic":
        # The scaling unlock: never materialise tables.  The symbolic
        # engine proves the D-Mod-K closed form, so any other engine's
        # tables would be certified against the wrong routing.  The
        # isolation analyzer additionally knows the typed closed form.
        if args.routing == "typeaware" and args.isolation:
            tables, routing_name = None, "typeaware"
        elif args.routing not in ("dmodk", "none"):
            raise SystemExit("--engine symbolic proves the D-Mod-K closed "
                             "form; use --routing dmodk (or none), or "
                             "--routing typeaware with --isolation")
        else:
            tables, routing_name = None, "dmodk"
    else:
        if args.engine == "both" and args.routing != "dmodk":
            raise SystemExit("--engine both cross-checks the symbolic "
                             "engine against D-Mod-K tables; use "
                             "--routing dmodk")
        tables, routing_name = _route(fabric, args, active=active)

    schedule = []
    if args.cps:
        if tables is None and args.engine == "enumerate":
            raise SystemExit("--cps needs routed tables (--routing != none) "
                             "or a table-free engine (--engine symbolic)")
        order = _make_order(fabric, args, active=active)
        for name in args.cps.split(","):
            name = name.strip()
            schedule.append(ScheduleCase(
                cps=_make_cps(name, fabric, args, num_ranks=len(order)),
                placement=order,
                label=f"{name}/{args.order}",
            ))

    fault_space = None
    if args.fault_space:
        if tables is None:
            raise SystemExit("--fault-space repairs materialised tables; "
                             "use a table-building engine "
                             "(--engine enumerate/both, --routing dmodk)")
        if not schedule:
            raise SystemExit("--fault-space certifies degraded schedules; "
                             "give --cps")
        fault_space = dict(units=args.fault_units,
                           max_faults=args.max_faults,
                           samples=args.fault_samples,
                           seed=args.fault_seed,
                           strategy=args.repair,
                           engine=args.fault_engine,
                           load_bound=args.load_bound)

    isolation = None
    if args.isolation:
        isolation = dict(
            cps_name=args.iso_cps,
            max_stages=args.max_shift_stages,
            bound=args.iso_bound,
            engine=args.iso_engine,
            fault_units=(None if args.iso_fault_units == "none"
                         else args.iso_fault_units),
            fault_samples=args.iso_fault_samples,
            fault_strategy=(args.repair if args.repair != "auto"
                            else "balanced"),
        )

    # The general symbolic certifier proves plain D-Mod-K only
    # (SYM010 otherwise); typed routing is certified per class by the
    # isolation pass instead.
    certify = not args.no_certify
    if routing_name == "typeaware" and args.engine in ("symbolic", "both"):
        certify = False

    ctx = CheckContext(fabric=fabric, tables=tables, schedule=schedule,
                       routing_name=routing_name, active=active)
    only = None
    if args.passes:
        only = {p.strip() for p in args.passes.split(",")}
    result = run_check(ctx, only=only, updown_sample=args.updown_sample,
                       certify=certify, engine=args.engine,
                       symbolic_active=active, fault_space=fault_space,
                       isolation=isolation,
                       max_diags_per_code=args.max_diags)

    if args.cert_out:
        Path(args.cert_out).write_text(
            json.dumps(result.certificates, indent=2) + "\n")

    fmt = args.format or ("json" if args.json else "text")
    if fmt == "sarif":
        uri = args.topofile if args.topofile is not None else \
            f"{args.topo or 'pgft'}.topo"
        line_map = None
        if args.topofile is not None:
            line_map = build_line_map(Path(args.topofile).read_text())
        print(dumps_sarif(result, artifact_uri=uri, line_map=line_map))
    elif fmt == "json":
        payload = result.to_json()
        if "faultspace" in result.artifacts:
            payload["faultspace"] = result.artifacts["faultspace"]
        if "isolation" in result.artifacts:
            payload["isolation"] = result.artifacts["isolation"]
        print(json.dumps(payload, indent=2))
    else:
        print(result.report.render_text())
        summary = result.report.summary()
        print(f"\ncheck | passes: {', '.join(result.passes_run)}")
        print(f"check | errors={summary['errors']} "
              f"warnings={summary['warnings']} info={summary['info']}")
        for cert in result.certificates:
            print(f"check | CERTIFIED contention-free "
                  f"[{cert['certificate_kind']}]: {cert['case']} on "
                  f"{cert['topology']} via {cert['routing']} "
                  f"(max link load {cert['max_link_load']}, "
                  f"{cert['num_flows']} flows over {cert['num_stages']} "
                  "stages)")
        if args.cert_out:
            print(f"check | certificates written to {args.cert_out}")
    return result.exit_code()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
