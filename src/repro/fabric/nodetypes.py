"""Node-type annotations for heterogeneous fabrics.

Real clusters mix populations -- compute nodes, storage targets,
service/login nodes -- and each population generates its own traffic
class.  The paper's theorems certify a *single* global collective over
a homogeneous population; Gliksberg et al. (arXiv 2211.11818) show that
PGFT routing must be computed *per node type* for each class to stay
balanced over its own sub-population.

:class:`NodeTypeMap` is the model side of that idea: an immutable
assignment of every end-port to exactly one named type.  The
type-aware router (:mod:`repro.routing.typeaware`) consumes it to
apply eq. (1) to per-type dense ranks, and the traffic-class isolation
analyzer (:mod:`repro.check.isolation`) certifies each class
separately and bounds cross-class link sharing.

Layouts
-------
Three constructors cover the layouts that matter in practice:

* :meth:`NodeTypeMap.blocked` -- types occupy consecutive end-port
  blocks (racks dedicated per type).  Class ranks stay consecutive, so
  even type-blind D-Mod-K keeps each class contention-free.
* :meth:`NodeTypeMap.per_leaf` -- every leaf donates its last ``k``
  ports to a type (one storage target per enclosure).  Aligned across
  leaves, so class positions are congruent modulo the leaf size.
* :meth:`NodeTypeMap.staggered` -- like ``per_leaf`` but the donated
  positions rotate from leaf to leaf (nodes land wherever the rack had
  space).  This is the layout that *breaks* type-blind D-Mod-K: class
  ranks acquire irregular gaps, consecutive-rank windows of eq. (1)
  collide, and only per-type routing restores contention freedom.

:func:`parse_types` turns the CLI syntax (``staggered:storage=2``)
into a map.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.spec import PGFTSpec

__all__ = ["NodeTypeMap", "parse_types", "DEFAULT_TYPE"]

#: the type every port gets when nothing says otherwise
DEFAULT_TYPE = "compute"


@dataclass(frozen=True)
class NodeTypeMap:
    """Immutable end-port -> named-type assignment.

    ``type_names`` lists the distinct types (deterministic order:
    construction order, default type first); ``type_of[j]`` is the
    index into ``type_names`` of end-port ``j``.
    """

    type_names: tuple[str, ...]
    type_of: np.ndarray            # (num_endports,) int64 indices

    def __post_init__(self) -> None:
        arr = np.asarray(self.type_of, dtype=np.int64)
        object.__setattr__(self, "type_of", arr)
        if len(self.type_names) == 0:
            raise ValueError("a NodeTypeMap needs at least one type name")
        if len(set(self.type_names)) != len(self.type_names):
            raise ValueError(f"duplicate type names: {self.type_names}")
        if len(arr) == 0:
            raise ValueError("a NodeTypeMap needs at least one end-port")
        if arr.min() < 0 or arr.max() >= len(self.type_names):
            raise ValueError("type_of references an unnamed type index")

    # -- basic queries -----------------------------------------------------
    @property
    def num_endports(self) -> int:
        return len(self.type_of)

    @property
    def num_types(self) -> int:
        return len(self.type_names)

    @property
    def is_uniform(self) -> bool:
        """Whether every end-port shares one type (the homogeneous
        degenerate case: type-aware routing equals plain D-Mod-K)."""
        return bool((self.type_of == self.type_of[0]).all())

    def counts(self) -> dict[str, int]:
        """Population size per type name (insertion order of
        ``type_names``)."""
        c = np.bincount(self.type_of, minlength=self.num_types)
        return {name: int(c[i]) for i, name in enumerate(self.type_names)}

    def ports_of(self, name: str) -> np.ndarray:
        """Sorted end-port indices of type ``name``."""
        return np.flatnonzero(self.type_of == self.index_of(name))

    def index_of(self, name: str) -> int:
        try:
            return self.type_names.index(name)
        except ValueError:
            raise KeyError(f"unknown node type {name!r}; "
                           f"known: {list(self.type_names)}") from None

    def name_of(self, port: int) -> str:
        return self.type_names[int(self.type_of[port])]

    def to_json(self) -> dict:
        return {"type_names": list(self.type_names),
                "type_of": self.type_of.tolist()}

    @classmethod
    def from_json(cls, doc: dict) -> "NodeTypeMap":
        return cls(type_names=tuple(doc["type_names"]),
                   type_of=np.asarray(doc["type_of"], dtype=np.int64))

    def __repr__(self) -> str:
        body = ", ".join(
            f"{k}={v}"
            for k, v in self.counts().items())  # det: ok - type_names order
        return f"NodeTypeMap({body})"

    # -- constructors ------------------------------------------------------
    @classmethod
    def uniform(cls, num_endports: int,
                name: str = DEFAULT_TYPE) -> "NodeTypeMap":
        """Every end-port the same type (homogeneous fabric)."""
        return cls(type_names=(name,),
                   type_of=np.zeros(num_endports, dtype=np.int64))

    @classmethod
    def from_ports(cls, num_endports: int, ports: dict[str, object],
                   default: str = DEFAULT_TYPE) -> "NodeTypeMap":
        """Explicit port lists per type; unlisted ports get ``default``."""
        names = [default] + [n for n in ports if n != default]
        type_of = np.zeros(num_endports, dtype=np.int64)
        seen = np.zeros(num_endports, dtype=bool)
        for name in names[1:]:
            idx = np.asarray(ports[name], dtype=np.int64)
            if len(idx) and (idx.min() < 0 or idx.max() >= num_endports):
                raise ValueError(f"type {name!r} references end-ports "
                                 "outside the fabric")
            if seen[idx].any():
                raise ValueError(f"type {name!r} re-types an already "
                                 "typed end-port")
            seen[idx] = True
            type_of[idx] = names.index(name)
        return cls(type_names=tuple(names), type_of=type_of)

    @classmethod
    def blocked(cls, num_endports: int, counts: dict[str, int],
                rest: str = DEFAULT_TYPE) -> "NodeTypeMap":
        """Types occupy consecutive leading blocks (in ``counts``
        order); the remainder is ``rest``.  Consecutive blocks keep
        class ranks dense, so even type-blind D-Mod-K stays per-class
        contention-free under this layout."""
        ports: dict[str, np.ndarray] = {}
        start = 0
        for name, k in counts.items():  # det: ok - caller order is the layout
            if k < 0 or start + k > num_endports:
                raise ValueError(f"blocked layout overflows the fabric at "
                                 f"{name}={k}")
            ports[name] = np.arange(start, start + k, dtype=np.int64)
            start += k
        return cls.from_ports(num_endports, ports, default=rest)

    @classmethod
    def per_leaf(cls, spec: PGFTSpec, counts: dict[str, int],
                 rest: str = DEFAULT_TYPE) -> "NodeTypeMap":
        """Every leaf donates its *last* ports to the given types, the
        same positions in every leaf (one storage node per enclosure,
        bottom of the rack).  Aligned positions keep per-class windows
        collision-free even under type-blind D-Mod-K."""
        leaf = spec.leaf_size
        total = sum(counts.values())
        if total > leaf:
            raise ValueError(f"per-leaf layout wants {total} typed ports "
                             f"per leaf of {leaf}")
        N = spec.num_endports
        base = np.arange(N // leaf, dtype=np.int64) * leaf
        ports: dict[str, np.ndarray] = {}
        pos = leaf - total
        for name, k in counts.items():  # det: ok - caller order is the layout
            ports[name] = (base[:, None]
                           + np.arange(pos, pos + k)).ravel()
            pos += k
        return cls.from_ports(N, ports, default=rest)

    @classmethod
    def staggered(cls, spec: PGFTSpec, counts: dict[str, int],
                  rest: str = DEFAULT_TYPE) -> "NodeTypeMap":
        """Like :meth:`per_leaf`, but the donated positions rotate by
        ``total`` slots per leaf (typed nodes land wherever the rack
        had space).  The rotation de-aligns class positions across
        leaves, which is exactly what makes type-blind D-Mod-K collide
        within a class -- the layout the isolation analyzer's
        refutation demo uses."""
        leaf = spec.leaf_size
        total = sum(counts.values())
        if total > leaf:
            raise ValueError(f"staggered layout wants {total} typed ports "
                             f"per leaf of {leaf}")
        N = spec.num_endports
        leaves = np.arange(N // leaf, dtype=np.int64)
        ports: dict[str, np.ndarray] = {}
        pos = 0
        for name, k in counts.items():  # det: ok - caller order is the layout
            offs = np.arange(pos, pos + k)
            ports[name] = (leaves[:, None] * leaf
                           + (total * leaves[:, None] + offs) % leaf).ravel()
            pos += k
        return cls.from_ports(N, ports, default=rest)


def _parse_counts(body: str) -> dict[str, int]:
    counts: dict[str, int] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"expected NAME=COUNT, got {item!r}")
        name, _, num = item.partition("=")
        counts[name.strip()] = int(num)
    if not counts:
        raise ValueError("no NAME=COUNT entries given")
    return counts


def parse_types(text: str, num_endports: int,
                spec: PGFTSpec | None = None) -> NodeTypeMap:
    """Parse the CLI node-type layout syntax.

    Accepted forms::

        uniform[:NAME]            every port one type (default 'compute')
        blocked:NAME=K[,NAME=K..]  leading consecutive blocks
        per-leaf:NAME=K[,..]       last K ports of every leaf
        staggered:NAME=K[,..]      per-leaf, positions rotating per leaf

    ``per-leaf`` and ``staggered`` need the PGFT ``spec`` (the leaf
    size comes from ``M(1)``).
    """
    kind, _, body = text.partition(":")
    kind = kind.strip()
    if kind == "uniform":
        return NodeTypeMap.uniform(num_endports, body.strip() or DEFAULT_TYPE)
    if kind == "blocked":
        return NodeTypeMap.blocked(num_endports, _parse_counts(body))
    if kind in ("per-leaf", "staggered"):
        if spec is None:
            raise ValueError(f"{kind!r} node-type layouts need a PGFT spec "
                             "(the leaf size comes from the tuple)")
        ctor = NodeTypeMap.per_leaf if kind == "per-leaf" \
            else NodeTypeMap.staggered
        return ctor(spec, _parse_counts(body))
    raise ValueError(f"unknown node-type layout {kind!r}; known: uniform, "
                     "blocked, per-leaf, staggered")
