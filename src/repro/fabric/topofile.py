"""Topology file format: a small ibnetdiscover-like text dialect.

The paper's tooling (ibdm / ibutils) works by "parsing a file holding
the topology and then manipulating the resulting in-memory
data-structures".  We provide the same workflow with a minimal,
line-oriented format:

::

    # comment
    pgft 2; 4,4; 1,2; 1,2          # optional spec line (metadata only)
    hca    H0000 ports=1
    switch SW1-0000 ports=8 level=1
    link   H0000[0] SW1-0000[0]

* ``hca`` nodes are end-ports; their declaration order defines the
  end-port index (= MPI topology order).
* ``switch`` nodes may carry an optional ``level=`` attribute; when any
  level is missing, levels are inferred by BFS from the hosts.
* ``link A[pa] B[pb]`` wires local port ``pa`` of ``A`` to ``pb`` of
  ``B``; each port may be used once.

:func:`save` writes any :class:`~repro.fabric.model.Fabric` in this
format and :func:`load` parses it back; a round-trip preserves the wiring
bit-for-bit (node numbering included).
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from ..topology.spec import PGFTSpec, pgft
from .model import Fabric

__all__ = ["load", "loads", "save", "dumps", "TopoFileError"]


class TopoFileError(ValueError):
    """Raised on malformed topology files."""


_LINK_RE = re.compile(r"^(\S+)\[(\d+)\]\s+(\S+)\[(\d+)\]$")


def dumps(fabric: Fabric) -> str:
    """Serialise a fabric to the text format."""
    out: list[str] = ["# repro fabric"]
    if fabric.spec is not None:
        s = fabric.spec
        out.append(
            "pgft {}; {}; {}; {}".format(
                s.h,
                ",".join(map(str, s.m)),
                ",".join(map(str, s.w)),
                ",".join(map(str, s.p)),
            )
        )
    for v in range(fabric.num_nodes):
        name = fabric.node_names[v]
        ports = fabric.degree(v)
        if v < fabric.num_endports:
            out.append(f"hca {name} ports={ports}")
        else:
            out.append(f"switch {name} ports={ports} level={int(fabric.node_level[v])}")
    seen = set()
    for gp in range(fabric.num_ports):
        peer = int(fabric.port_peer[gp])
        if peer < 0 or gp in seen:
            continue
        seen.add(peer)
        a = int(fabric.port_owner[gp])
        b = int(fabric.port_owner[peer])
        pa = gp - int(fabric.port_start[a])
        pb = peer - int(fabric.port_start[b])
        out.append(f"link {fabric.node_names[a]}[{pa}] {fabric.node_names[b]}[{pb}]")
    return "\n".join(out) + "\n"


def save(fabric: Fabric, path: str | Path) -> None:
    Path(path).write_text(dumps(fabric))


def loads(text: str) -> Fabric:
    """Parse the text format into a :class:`Fabric`."""
    spec: PGFTSpec | None = None
    hcas: list[tuple[str, int]] = []
    switches: list[tuple[str, int, int]] = []
    raw_links: list[tuple[str, int, str, int]] = []

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        kind, _, rest = line.partition(" ")
        rest = rest.strip()
        try:
            if kind == "pgft":
                parts = [seg.strip() for seg in rest.split(";")]
                if len(parts) != 4:
                    raise TopoFileError("pgft needs 4 ;-separated groups")
                h = int(parts[0])
                vec = lambda s: [int(x) for x in s.split(",")]  # noqa: E731
                spec = pgft(h, vec(parts[1]), vec(parts[2]), vec(parts[3]))
            elif kind in ("hca", "switch"):
                fields = rest.split()
                name = fields[0]
                attrs = dict(f.split("=", 1) for f in fields[1:])
                ports = int(attrs.get("ports", 1))
                if kind == "hca":
                    hcas.append((name, ports))
                else:
                    switches.append((name, ports, int(attrs.get("level", -1))))
            elif kind == "link":
                m = _LINK_RE.match(rest)
                if not m:
                    raise TopoFileError(f"bad link syntax: {rest!r}")
                raw_links.append((m[1], int(m[2]), m[3], int(m[4])))
            else:
                raise TopoFileError(f"unknown directive {kind!r}")
        except (ValueError, KeyError) as exc:
            raise TopoFileError(f"line {lineno}: {exc}") from exc

    names = [n for n, _ in hcas] + [n for n, _, _ in switches]
    if len(set(names)) != len(names):
        raise TopoFileError("duplicate node names")
    index = {n: i for i, n in enumerate(names)}
    port_counts = np.array([p for _, p in hcas] + [p for _, p, _ in switches])
    levels = np.array(
        [0] * len(hcas) + [lvl for _, _, lvl in switches], dtype=np.int32
    )
    links = []
    for na, pa, nb, pb in raw_links:
        for n, p in ((na, pa), (nb, pb)):
            if n not in index:
                raise TopoFileError(f"link references unknown node {n!r}")
            if p >= port_counts[index[n]]:
                raise TopoFileError(f"port {p} out of range for node {n!r}")
        links.append((index[na], pa, index[nb], pb))

    return Fabric.from_links(
        num_endports=len(hcas),
        port_counts=port_counts,
        links=links,
        spec=spec,
        node_level=levels if (levels[len(hcas):] >= 0).all() or not len(switches)
        else None,
        node_names=names,
    )


def load(path: str | Path) -> Fabric:
    return loads(Path(path).read_text())
