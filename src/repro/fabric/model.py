"""Fabric data model: nodes, ports and cables as flat NumPy arrays.

This is the library's equivalent of the ``ibdm`` InfiniBand data model
the paper codes against (section VII): an in-memory description of a
physical fabric that routing engines populate with forwarding tables and
that the analysis/simulation layers traverse.

Layout
------
Nodes are numbered ``0..num_nodes-1``:

* ``0..N-1``               -- end-ports (host channel adapters), where
  ``N`` is the end-port count; the node id *is* the paper's end-port
  index ``j`` (the topology-aware MPI node order),
* switches follow, grouped by level (level 1 first).

Ports use a CSR layout: node ``v`` owns global port ids
``port_start[v] .. port_start[v+1]-1``.  Within a switch, local port
numbers are *down ports first* (``0..m_l*p_l-1``) then *up ports*
(``m_l*p_l..``); end-port nodes own only up ports.  A directed link is
identified with its source port id, so per-link flow counters are simply
arrays indexed by global port id.

The model is deliberately struct-of-arrays: every consumer (HSD engine,
fluid simulator) works on whole stages of flows at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..topology.pgft import PGFT
from ..topology.spec import PGFTSpec
from .nodetypes import NodeTypeMap

__all__ = ["Fabric", "build_fabric"]

ENDPORT = 0
SWITCH = 1


@dataclass
class Fabric:
    """A wired fabric.  Construct via :func:`build_fabric` or
    :meth:`Fabric.from_links`.

    Attributes
    ----------
    num_endports:
        Number of host end-ports; node ids ``< num_endports`` are hosts.
    node_level:
        Per-node tree level (0 for end-ports).  ``-1`` when unknown
        (generic parsed fabrics before :meth:`infer_levels`).
    port_start:
        CSR offsets, shape ``(num_nodes+1,)``.
    port_peer:
        For each global port id, the port id at the far end of the cable
        (``-1`` if unconnected).  Cables are symmetric:
        ``port_peer[port_peer[x]] == x``.
    node_names:
        Optional human-readable names (used by the topology file
        writer); auto-generated when absent.
    node_types:
        Optional :class:`~repro.fabric.nodetypes.NodeTypeMap` tagging
        every end-port with a traffic class (compute/storage/...).
        Consumed by the type-aware router and the isolation analyzer;
        ``None`` means a homogeneous population.
    """

    num_endports: int
    node_level: np.ndarray
    port_start: np.ndarray
    port_peer: np.ndarray
    spec: PGFTSpec | None = None
    node_names: list[str] = field(default_factory=list)
    node_types: NodeTypeMap | None = None

    # Derived, filled in __post_init__.
    port_owner: np.ndarray = field(init=False)
    peer_node: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        nn = self.num_nodes
        counts = np.diff(self.port_start)
        self.port_owner = np.repeat(np.arange(nn, dtype=np.int32), counts)
        self.peer_node = np.where(
            self.port_peer >= 0, self.port_owner[self.port_peer], -1
        ).astype(np.int32)
        if not self.node_names:
            self.node_names = [self._default_name(v) for v in range(nn)]
        if (self.node_types is not None
                and self.node_types.num_endports != self.num_endports):
            raise ValueError(
                f"node_types covers {self.node_types.num_endports} "
                f"end-ports, fabric has {self.num_endports}")

    # -- basic queries ---------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.port_start) - 1

    @property
    def num_ports(self) -> int:
        return int(self.port_start[-1])

    @property
    def num_switches(self) -> int:
        return self.num_nodes - self.num_endports

    def node_kind(self, v: int) -> int:
        return ENDPORT if v < self.num_endports else SWITCH

    def is_endport(self, v: np.ndarray | int) -> np.ndarray | bool:
        return np.asarray(v) < self.num_endports

    def gport(self, node: np.ndarray | int, local: np.ndarray | int) -> np.ndarray:
        """Global port id of ``(node, local_port)``; broadcasts."""
        return self.port_start[np.asarray(node)] + np.asarray(local)

    def local_port(self, gport: np.ndarray | int) -> np.ndarray:
        gport = np.asarray(gport)
        return gport - self.port_start[self.port_owner[gport]]

    def ports_of(self, node: int) -> np.ndarray:
        return np.arange(self.port_start[node], self.port_start[node + 1])

    def degree(self, node: int) -> int:
        return int(self.port_start[node + 1] - self.port_start[node])

    # -- level / direction helpers ----------------------------------------
    def port_goes_up(self) -> np.ndarray:
        """Boolean mask over global ports: cable ascends a level."""
        lvl = self.node_level
        src = lvl[self.port_owner]
        dst = np.where(self.peer_node >= 0, lvl[self.peer_node], -1)
        return (self.port_peer >= 0) & (dst > src)

    def infer_levels(self) -> None:
        """BFS from end-ports to assign levels to a generic fabric."""
        lvl = np.full(self.num_nodes, -1, dtype=np.int32)
        lvl[: self.num_endports] = 0
        frontier = np.arange(self.num_endports)
        depth = 0
        while len(frontier):
            depth += 1
            nbrs = []
            for v in frontier:
                ps = self.ports_of(v)
                peers = self.peer_node[ps]
                nbrs.append(peers[peers >= 0])
            nxt = np.unique(np.concatenate(nbrs)) if nbrs else np.array([], int)
            nxt = nxt[lvl[nxt] == -1]
            lvl[nxt] = depth
            frontier = nxt
        self.node_level = lvl

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_links(
        cls,
        num_endports: int,
        port_counts: np.ndarray,
        links: list[tuple[int, int, int, int]],
        spec: PGFTSpec | None = None,
        node_level: np.ndarray | None = None,
        node_names: list[str] | None = None,
    ) -> "Fabric":
        """Build from explicit ``(node_a, port_a, node_b, port_b)`` cables.

        ``port_counts[v]`` is the number of local ports of node ``v``.
        """
        port_counts = np.asarray(port_counts, dtype=np.int64)
        port_start = np.zeros(len(port_counts) + 1, dtype=np.int64)
        np.cumsum(port_counts, out=port_start[1:])
        peer = np.full(int(port_start[-1]), -1, dtype=np.int64)
        for a, pa, b, pb in links:
            ga = port_start[a] + pa
            gb = port_start[b] + pb
            if peer[ga] != -1 or peer[gb] != -1:
                raise ValueError(f"port reused in link ({a},{pa})-({b},{pb})")
            peer[ga] = gb
            peer[gb] = ga
        if node_level is None:
            node_level = np.full(len(port_counts), -1, dtype=np.int32)
        fab = cls(
            num_endports=num_endports,
            node_level=np.asarray(node_level, dtype=np.int32),
            port_start=port_start,
            port_peer=peer,
            spec=spec,
            node_names=node_names or [],
        )
        if len(fab.node_level) and (fab.node_level < 0).any():
            fab.infer_levels()
        return fab

    # -- failure injection ---------------------------------------------------
    def with_failed_cables(self, gports) -> "Fabric":
        """A copy of the fabric with the cables of ``gports`` removed.

        Each entry may name either end of a cable; both ends are marked
        unconnected.  Used for fault-tolerance studies -- routing
        engines must then avoid the dead ports (see
        :mod:`repro.routing.repair`).
        """
        peer = self.port_peer.copy()
        for gp in np.atleast_1d(np.asarray(gports, dtype=np.int64)):
            other = peer[gp]
            if other < 0:
                continue
            peer[gp] = -1
            peer[other] = -1
        return Fabric(
            num_endports=self.num_endports,
            node_level=self.node_level.copy(),
            port_start=self.port_start,
            port_peer=peer,
            spec=self.spec,
            node_names=list(self.node_names),
            node_types=self.node_types,
        )

    def with_failed_switches(self, nodes) -> "Fabric":
        """A copy of the fabric with every cable of ``nodes`` removed.

        The switch-death analogue of :meth:`with_failed_cables`: the
        node itself stays in the model (levels, port ranges and ids are
        unchanged) but all its ports -- and their peers' -- are marked
        unconnected, so routing sees it as unreachable and untraversable.
        Killing a host's node just disconnects that host.
        """
        peer = self.port_peer.copy()
        for node in np.atleast_1d(np.asarray(nodes, dtype=np.int64)):
            if not 0 <= node < len(self.port_start) - 1:
                raise ValueError(f"no such node {int(node)}")
            for gp in range(int(self.port_start[node]),
                            int(self.port_start[node + 1])):
                other = peer[gp]
                if other < 0:
                    continue
                peer[gp] = -1
                peer[other] = -1
        return Fabric(
            num_endports=self.num_endports,
            node_level=self.node_level.copy(),
            port_start=self.port_start,
            port_peer=peer,
            spec=self.spec,
            node_names=list(self.node_names),
            node_types=self.node_types,
        )

    def dead_ports(self) -> np.ndarray:
        """Global port ids with no cable attached."""
        return np.flatnonzero(self.port_peer < 0)

    # -- PGFT accessors -----------------------------------------------------
    def switch_node(self, level: int, index: np.ndarray | int) -> np.ndarray:
        """Global node id of switch ``index`` at ``level`` (PGFT fabrics)."""
        if self.spec is None:
            raise ValueError("fabric has no PGFT spec")
        base = self.num_endports
        for l in range(1, level):
            base += self.spec.switches_at(l)
        return base + np.asarray(index)

    def _default_name(self, v: int) -> str:
        if v < self.num_endports:
            return f"H{v:04d}"
        lvl = int(self.node_level[v]) if len(self.node_level) else -1
        return f"SW{lvl}-{v - self.num_endports:04d}"

    def __repr__(self) -> str:
        return (
            f"Fabric(endports={self.num_endports}, switches={self.num_switches},"
            f" ports={self.num_ports}, spec={self.spec})"
        )


def build_fabric(spec: PGFTSpec,
                 node_types: NodeTypeMap | None = None) -> Fabric:
    """Materialise the PGFT described by ``spec`` into a wired
    :class:`Fabric` using the paper's parallel-port connection rule.

    ``node_types`` optionally tags every end-port with a traffic class
    (see :class:`~repro.fabric.nodetypes.NodeTypeMap`)."""
    tree = PGFT(spec)
    N = spec.num_endports

    # Node table: end-ports, then switches level by level.
    levels = [np.zeros(N, dtype=np.int32)]
    port_counts = [np.full(N, spec.up_ports_at(0), dtype=np.int64)]
    switch_base: dict[int, int] = {}
    base = N
    for level in spec.iter_levels():
        cnt = spec.switches_at(level)
        switch_base[level] = base
        base += cnt
        levels.append(np.full(cnt, level, dtype=np.int32))
        port_counts.append(np.full(cnt, spec.ports_at(level), dtype=np.int64))
    node_level = np.concatenate(levels)
    port_counts = np.concatenate(port_counts)
    port_start = np.zeros(len(port_counts) + 1, dtype=np.int64)
    np.cumsum(port_counts, out=port_start[1:])
    peer = np.full(int(port_start[-1]), -1, dtype=np.int64)

    for level, lower, up_port, upper, down_port in tree.iter_level_cables():
        lo_base = 0 if level == 1 else switch_base[level - 1]
        lo_node = lo_base + lower
        up_node = switch_base[level] + upper
        # Local numbering: switches place down ports first.
        lo_down = 0 if level == 1 else spec.down_ports_at(level - 1)
        ga = port_start[lo_node] + lo_down + up_port
        gb = port_start[up_node] + down_port
        peer[ga] = gb
        peer[gb] = ga

    fab = Fabric(
        num_endports=N,
        node_level=node_level,
        port_start=port_start,
        port_peer=peer,
        spec=spec,
        node_types=node_types,
    )
    return fab
