"""``repro-fabric``: operate on topology files from the command line.

Sub-commands (all read the text format of :mod:`repro.fabric.topofile`):

* ``generate <spec> <out.topo>`` -- write a fabric for a PGFT tuple,
  e.g. ``repro-fabric generate "2; 18,18; 1,9; 1,2" cluster.topo``;
* ``describe <file>`` -- node/port/link summary + declared spec;
* ``discover <file>`` -- infer and verify the PGFT structure of the
  wiring (exits non-zero with the first violation on miswired fabrics);
* ``validate <file>`` -- route with D-Mod-K (PGFT fabrics) or min-hop
  and run the full validator battery: reachability, up*/down* shape,
  theorem-2 down-port uniqueness, channel-dependency deadlock freedom;
* ``hsd <file> --cps shift --order random`` -- hot-spot-degree report
  for a collective under a placement.

This is the library's equivalent of the ibutils workflow the paper
builds on ("parsing a file holding the topology and then manipulating
the resulting in-memory data-structures").
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ..analysis import sequence_hsd
from ..collectives import by_name, hierarchical_recursive_doubling
from ..ordering import random_order, topology_order
from ..routing import route_dmodk, route_minhop
from ..topology import DiscoveryError, discover_pgft, pgft
from .model import build_fabric
from .topofile import load, save

__all__ = ["main"]


def _parse_spec(text: str):
    parts = [seg.strip() for seg in text.split(";")]
    if len(parts) != 4:
        raise SystemExit("spec must be 'h; m1,..; w1,..; p1,..'")
    vec = lambda s: [int(x) for x in s.split(",")]  # noqa: E731
    return pgft(int(parts[0]), vec(parts[1]), vec(parts[2]), vec(parts[3]))


def _routed(fab):
    if fab.spec is not None:
        return route_dmodk(fab), "dmodk"
    return route_minhop(fab), "minhop-roundrobin"


def cmd_generate(args) -> int:
    spec = _parse_spec(args.spec)
    save(build_fabric(spec), args.out)
    print(f"wrote {spec} ({spec.num_endports} end-ports) to {args.out}")
    return 0


def cmd_describe(args) -> int:
    fab = load(args.file)
    print(f"file      : {args.file}")
    print(f"end-ports : {fab.num_endports}")
    print(f"switches  : {fab.num_switches}")
    print(f"cables    : {fab.num_ports // 2}")
    print(f"declared  : {fab.spec if fab.spec else '(no pgft line)'}")
    if fab.spec is not None:
        print(fab.spec.describe())
    return 0


def cmd_discover(args) -> int:
    fab = load(args.file)
    try:
        spec = discover_pgft(fab)
    except DiscoveryError as exc:
        print(f"NOT a valid PGFT: {exc}")
        return 1
    print(f"valid PGFT wiring: {spec}")
    if fab.spec is not None and fab.spec != spec:
        print(f"WARNING: declared spec {fab.spec} differs from wiring")
        return 1
    return 0


def cmd_validate(args) -> int:
    from ..check import CheckContext, run_check

    fab = load(args.file)
    tables, engine = _routed(fab)
    print(f"routing engine      : {engine}")
    only = {"wiring", "spec-conformance", "reachability", "up-down", "cdg",
            "dmodk-conformance", "down-balance"}
    if args.audit:
        only |= {"up-balance", "minimality"}
    result = run_check(
        CheckContext.for_tables(tables, routing_name=engine.split("-")[0]),
        only=only, updown_sample=args.sample, certify=False,
    )

    def status(*codes):
        n = sum(result.report.counts.get(c, 0) for c in codes)
        return "OK" if n == 0 else f"VIOLATED ({n} finding(s))"

    wiring = status("FAB001", "FAB002", "FAB003", "FAB004", "FAB005",
                    "FAB006")
    print(f"wiring              : {wiring}")
    print(f"reachability        : {status('RTE001', 'RTE002')}")
    print(f"up*/down* shape     : {status('RTE010')}")
    print(f"deadlock freedom    : {status('RTE020')}")
    if fab.spec is not None:
        print(f"theorem-2 down-ports: {status('RTE040')}")
        if "dmodk-conformance" in result.passes_run:
            print(f"eq. (1) conformance : {status('RTE030')}")
    if len(result.report):
        print(result.report.render_text())
    if args.audit:
        from ..analysis.audit import audit_tables

        print(audit_tables(tables, check_theorem2=False).render())
    return result.exit_code()


def cmd_route(args) -> int:
    from .lftfile import save_lft

    fab = load(args.file)
    tables, engine = _routed(fab)
    save_lft(tables, args.out)
    print(f"routed {fab.num_endports} end-ports with {engine}; "
          f"tables written to {args.out}")
    return 0


def cmd_hsd(args) -> int:
    fab = load(args.file)
    tables, engine = _routed(fab)
    n = fab.num_endports
    if args.cps == "recdbl-hier":
        if fab.spec is None:
            raise SystemExit("recdbl-hier needs a PGFT spec in the file")
        cps = hierarchical_recursive_doubling(fab.spec)
    else:
        cps = by_name(args.cps, n)
    order = (topology_order(n) if args.order == "topology"
             else random_order(n, seed=args.seed))
    rep = sequence_hsd(tables, cps, order)
    print(f"fabric   : {args.file} ({n} end-ports, routed {engine})")
    print(f"pattern  : {cps.name} over {len(cps.stages)} stages,"
          f" {args.order} order")
    print(f"worst HSD: {rep.worst}")
    print(f"avg max  : {rep.avg_max:.3f}")
    print("verdict  : " + ("congestion-free" if rep.congestion_free
                           else "BLOCKING"))
    return 0 if rep.congestion_free or args.order != "topology" else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fabric",
        description="operate on fat-tree topology files",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a PGFT fabric file")
    p.add_argument("spec", help="'h; m1,..; w1,..; p1,..'")
    p.add_argument("out")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("describe", help="summarise a fabric file")
    p.add_argument("file")
    p.set_defaults(func=cmd_describe)

    p = sub.add_parser("discover", help="infer/verify PGFT structure")
    p.add_argument("file")
    p.set_defaults(func=cmd_discover)

    p = sub.add_parser("validate", help="route + validator battery")
    p.add_argument("file")
    p.add_argument("--sample", type=int, default=500,
                   help="up/down check sample size")
    p.add_argument("--audit", action="store_true",
                   help="also run the table lint (balance, minimality)")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("route", help="compute and save forwarding tables")
    p.add_argument("file")
    p.add_argument("out", help="output .lft file")
    p.set_defaults(func=cmd_route)

    p = sub.add_parser("hsd", help="hot-spot-degree report")
    p.add_argument("file")
    p.add_argument("--cps", default="shift",
                   help="CPS name or 'recdbl-hier'")
    p.add_argument("--order", choices=("topology", "random"),
                   default="topology")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_hsd)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
