"""Fabric data model ("mini-ibdm"): wired nodes/ports, forwarding tables
and a topology file format."""

from .lft import ForwardingTables
from .model import ENDPORT, SWITCH, Fabric, build_fabric
from .render import render_levels, render_link_loads, render_route
from .topofile import TopoFileError, dumps, load, loads, save

__all__ = [
    "ENDPORT",
    "SWITCH",
    "Fabric",
    "ForwardingTables",
    "TopoFileError",
    "build_fabric",
    "dumps",
    "load",
    "loads",
    "render_levels",
    "render_link_loads",
    "render_route",
    "save",
]
