"""Fabric data model ("mini-ibdm"): wired nodes/ports, forwarding tables
and a topology file format."""

from .lft import ForwardingTables
from .model import ENDPORT, SWITCH, Fabric, build_fabric
from .nodetypes import DEFAULT_TYPE, NodeTypeMap, parse_types
from .render import render_levels, render_link_loads, render_route
from .topofile import TopoFileError, dumps, load, loads, save

__all__ = [
    "DEFAULT_TYPE",
    "ENDPORT",
    "NodeTypeMap",
    "SWITCH",
    "Fabric",
    "ForwardingTables",
    "TopoFileError",
    "build_fabric",
    "parse_types",
    "dumps",
    "load",
    "loads",
    "render_levels",
    "render_link_loads",
    "render_route",
    "save",
]
