"""Forwarding-table file format (OpenSM ``dump_lfts`` flavoured).

Subnet managers persist computed routes so tools can audit them and
switches can be programmed; we provide the same round-trip for
:class:`~repro.fabric.lft.ForwardingTables`:

::

    # repro lft v1
    switch SW1-0000
      0 : 2          # dest end-port 0 -> local out port 2
      1 : 2
      5 : -          # unreachable
    switch SW2-0000
      ...

Local port numbers (not global ids) are stored, so a table file remains
meaningful against a re-parsed copy of the same fabric.  ``host_up``
rows are stored only when present (multi-rail hosts).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .lft import ForwardingTables
from .model import Fabric

__all__ = ["dumps_lft", "loads_lft", "save_lft", "load_lft", "LftFileError"]


class LftFileError(ValueError):
    """Malformed forwarding-table file."""


def dumps_lft(tables: ForwardingTables) -> str:
    fab = tables.fabric
    out = ["# repro lft v1"]
    for row in range(fab.num_switches):
        node = fab.num_endports + row
        out.append(f"switch {fab.node_names[node]}")
        base = int(fab.port_start[node])
        for dest in range(fab.num_endports):
            gp = int(tables.switch_out[row, dest])
            cell = "-" if gp < 0 else str(gp - base)
            out.append(f"  {dest} : {cell}")
    if tables.host_up is not None:
        out.append("hostports")
        for src in range(fab.num_endports):
            row_txt = " ".join(str(int(v)) for v in tables.host_up[src])
            out.append(f"  {src} : {row_txt}")
    return "\n".join(out) + "\n"


def loads_lft(text: str, fabric: Fabric) -> ForwardingTables:
    name_to_node = {n: i for i, n in enumerate(fabric.node_names)}
    switch_out = np.full(
        (fabric.num_switches, fabric.num_endports), -1, dtype=np.int64
    )
    host_up = None
    cur_row: int | None = None
    in_hosts = False

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("switch "):
            name = line.split(None, 1)[1]
            if name not in name_to_node:
                raise LftFileError(f"line {lineno}: unknown switch {name!r}")
            node = name_to_node[name]
            cur_row = node - fabric.num_endports
            if cur_row < 0:
                raise LftFileError(f"line {lineno}: {name!r} is not a switch")
            in_hosts = False
        elif line == "hostports":
            host_up = np.zeros(
                (fabric.num_endports, fabric.num_endports), dtype=np.int32
            )
            in_hosts = True
        elif ":" in line:
            left, right = (s.strip() for s in line.split(":", 1))
            if in_hosts:
                src = int(left)
                host_up[src] = [int(v) for v in right.split()]
            else:
                if cur_row is None:
                    raise LftFileError(f"line {lineno}: entry before switch")
                dest = int(left)
                if right == "-":
                    continue
                node = fabric.num_endports + cur_row
                local = int(right)
                if local >= fabric.degree(node):
                    raise LftFileError(
                        f"line {lineno}: port {local} out of range"
                    )
                switch_out[cur_row, dest] = fabric.port_start[node] + local
        else:
            raise LftFileError(f"line {lineno}: cannot parse {line!r}")
    return ForwardingTables(fabric=fabric, switch_out=switch_out,
                            host_up=host_up)


def save_lft(tables: ForwardingTables, path: str | Path) -> None:
    Path(path).write_text(dumps_lft(tables))


def load_lft(path: str | Path, fabric: Fabric) -> ForwardingTables:
    return loads_lft(Path(path).read_text(), fabric)
