"""Linear forwarding tables (LFTs).

In InfiniBand every switch forwards by a linear table indexed by
destination LID.  We keep the same structure with destination *end-port
index* as the key (end-port node id == end-port index == LID here):

* ``switch_out[row, dest]`` -- the **global port id** a switch sends
  through toward ``dest`` (``-1`` = unreachable / self), where
  ``row = switch_node - num_endports``;
* ``host_up[src, dest]`` -- the local up-port a host uses toward
  ``dest``; omitted (``None``) when every host has a single cable
  (the RLFT case), meaning local port 0.

The tables are the hand-off point between routing engines and the
consumers (HSD analysis, simulators): any router that fills a
:class:`ForwardingTables` plugs into the rest of the library.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import Fabric

__all__ = ["ForwardingTables"]


@dataclass
class ForwardingTables:
    """Destination-based forwarding state for a whole fabric."""

    fabric: Fabric
    switch_out: np.ndarray            # (num_switches, N) int64, global port ids
    host_up: np.ndarray | None = None  # (N, N) int32 local ports, or None

    def __post_init__(self) -> None:
        ns, nd = self.switch_out.shape
        if ns != self.fabric.num_switches or nd != self.fabric.num_endports:
            raise ValueError(
                f"switch_out shape {self.switch_out.shape} does not match "
                f"fabric ({self.fabric.num_switches} switches, "
                f"{self.fabric.num_endports} end-ports)"
            )

    # -- queries ----------------------------------------------------------
    def out_port(self, node: np.ndarray | int, dest: np.ndarray | int) -> np.ndarray:
        """Global out-port id used by switch ``node`` toward ``dest``."""
        row = np.asarray(node) - self.fabric.num_endports
        return self.switch_out[row, np.asarray(dest)]

    def host_out_port(self, src: np.ndarray | int, dest: np.ndarray | int) -> np.ndarray:
        """Global out-port id used by host ``src`` toward ``dest``."""
        src = np.asarray(src)
        if self.host_up is None:
            local = np.zeros(np.broadcast_shapes(src.shape, np.asarray(dest).shape),
                             dtype=np.int64)
        else:
            local = self.host_up[src, np.asarray(dest)]
        return self.fabric.port_start[src] + local

    def next_node(self, node: np.ndarray | int, dest: np.ndarray | int) -> np.ndarray:
        """Node reached from switch ``node`` forwarding toward ``dest``."""
        gp = self.out_port(node, dest)
        return self.fabric.peer_node[gp]

    # -- serialisation (OpenSM ``dump_lfts``-like text) ---------------------
    def dump(self) -> str:
        """Readable dump: one block per switch, ``dest -> local port``."""
        fab = self.fabric
        lines = []
        for row in range(fab.num_switches):
            node = fab.num_endports + row
            lines.append(f"Switch {fab.node_names[node]} (node {node})")
            for dest in range(fab.num_endports):
                gp = self.switch_out[row, dest]
                local = "-" if gp < 0 else str(int(gp - fab.port_start[node]))
                lines.append(f"  {dest:6d} : {local}")
        return "\n".join(lines) + "\n"

    def paths_matrix(self, max_hops: int | None = None) -> np.ndarray:
        """Hop count between every (src, dst) end-port pair; ``-1`` when a
        destination is unreachable.  Mostly a validation helper."""
        fab = self.fabric
        N = fab.num_endports
        src = np.repeat(np.arange(N), N)
        dst = np.tile(np.arange(N), N)
        hops = np.zeros(N * N, dtype=np.int32)
        cur = src.copy()
        limit = max_hops or (2 * (int(fab.node_level.max()) + 1) + 2)
        gp = self.host_out_port(src, dst)
        active = src != dst
        cur[active] = fab.peer_node[gp[active]]
        hops[active] = 1
        for _ in range(limit):
            # Routes that walked into a dead cable (next node -1, e.g.
            # stale tables on a degraded fabric) are unreachable -- they
            # must not index the switch rows.
            dead = active & (cur < 0)
            if dead.any():
                hops[dead] = -1
                active &= ~dead
            active &= cur != dst
            if not active.any():
                break
            gp = self.out_port(cur[active], dst[active])
            bad = gp < 0
            nxt = np.where(bad, cur[active], fab.peer_node[np.where(bad, 0, gp)])
            cur[active] = nxt
            hops[active] += 1
            if bad.any():
                idx = np.flatnonzero(active)[bad]
                hops[idx] = -1
                active[idx] = False
        hops[(cur != dst) & (src != dst)] = -1
        return hops.reshape(N, N)
