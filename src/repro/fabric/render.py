"""Plain-text rendering of fabrics and routes.

Small fabrics (the paper's figures are all 16 nodes) are much easier to
reason about when you can *see* them; these helpers draw the level
structure and individual routes in plain text for examples, CLI output
and failing-test diagnostics.
"""

from __future__ import annotations

import numpy as np

from .lft import ForwardingTables
from .model import Fabric

__all__ = ["render_levels", "render_route", "render_link_loads"]


def render_levels(fabric: Fabric, max_width: int = 100) -> str:
    """One row per level, top first; hosts abbreviated when wide."""
    lines = []
    top = int(fabric.node_level.max())
    for level in range(top, -1, -1):
        nodes = [v for v in range(fabric.num_nodes)
                 if fabric.node_level[v] == level]
        names = [fabric.node_names[v] for v in nodes]
        row = "  ".join(names)
        if len(row) > max_width:
            row = f"{names[0]} .. {names[-1]}  ({len(names)} nodes)"
        label = f"L{level}" if level else "hosts"
        lines.append(f"{label:>5s} | {row}")
    return "\n".join(lines)


def render_route(tables: ForwardingTables, src: int, dst: int) -> str:
    """``H0 -(p0)-> SW1-0000 -(p5)-> ... -> H9`` for one route."""
    # Imported here: repro.routing pulls the analysis layer, which in
    # turn imports this package (render is a leaf convenience module).
    from ..routing.validate import trace_route

    fab = tables.fabric
    if src == dst:
        return f"{fab.node_names[src]} (local)"
    parts = [fab.node_names[src]]
    for gp in trace_route(tables, src, dst):
        local = int(fab.local_port(gp))
        nxt = int(fab.peer_node[gp])
        parts.append(f"-(p{local})-> {fab.node_names[nxt]}")
    return " ".join(parts)


def render_link_loads(fabric: Fabric, loads: np.ndarray,
                      min_load: int = 1) -> str:
    """List every directed link carrying at least ``min_load`` flows,
    hottest first."""
    order = np.argsort(-loads, kind="stable")
    lines = []
    for gp in order:
        if loads[gp] < min_load:
            break
        owner = int(fabric.port_owner[gp])
        peer = int(fabric.peer_node[gp])
        local = int(gp - fabric.port_start[owner])
        lines.append(
            f"{int(loads[gp]):4d} flows  "
            f"{fabric.node_names[owner]}[{local}] -> {fabric.node_names[peer]}"
        )
    return "\n".join(lines) if lines else "(no loaded links)"
