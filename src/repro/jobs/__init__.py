"""Multi-job operation: congestion-free sub-allocation of RLFTs."""

from .allocation import AllocationError, Job, SubAllocator

__all__ = ["AllocationError", "Job", "SubAllocator"]
