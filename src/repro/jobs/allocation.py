"""Multi-job sub-allocation on RLFTs.

Section V notes the maximal 3-level RLFT "has 36 different sub
allocations that can provide congestion-free unidirectional MPI
collective in multiplications of 324 nodes" -- and leaves multi-job
operation as future work.  This module implements that allocator.

The allocation unit is one **level-(h-1) sub-tree** (``M_{h-1}``
end-ports: a whole leaf switch on 2-level trees, a whole 324-node
level-2 sub-tree on the maximal 3-level tree).  Jobs receive whole
units, topology-ordered ranks, and plain D-Mod-K routing.  Two
properties follow from the paper's theorems (and are verified in the
test suite):

* **per-job congestion freedom** -- within a job, every stage of a
  constant-displacement sequence keeps HSD = 1: unit boundaries are
  multiples of every modulus in eq. (1), so dense job ranks wrap
  cleanly (lemma 3);
* **inter-job isolation** -- concurrent jobs never share a directed
  link: up-links above a unit belong to the unit's own switches, and
  theorem 2 dedicates every down-link to a single destination, which
  belongs to exactly one job.

So a shared cluster can run one global collective *per job*
simultaneously, all at full bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fabric.nodetypes import DEFAULT_TYPE, NodeTypeMap
from ..topology.spec import PGFTSpec

__all__ = ["Job", "SubAllocator", "AllocationError"]


class AllocationError(RuntimeError):
    """The request cannot be satisfied."""


@dataclass(frozen=True)
class Job:
    """A granted allocation."""

    job_id: int
    units: tuple[int, ...]          # allocation-unit indices, ascending
    active_ports: np.ndarray        # end-port indices, ascending
    node_type: str = DEFAULT_TYPE   # traffic class of the job's nodes

    @property
    def num_ranks(self) -> int:
        return len(self.active_ports)

    @property
    def placement(self) -> np.ndarray:
        """Topology-aware rank placement: rank ``r`` on the job's
        ``r``-th end-port in fabric order."""
        return self.active_ports

    @property
    def active(self) -> np.ndarray:
        """Placement-compatible alias: the job's active end-port set, as
        consumed by ``CheckContext.active`` and job-aware routing."""
        return self.active_ports

    def __repr__(self) -> str:
        return (f"Job(id={self.job_id}, units={list(self.units)},"
                f" ranks={self.num_ranks}, type={self.node_type!r})")


class SubAllocator:
    """First-fit allocator of level-(h-1) sub-tree units."""

    def __init__(self, spec: PGFTSpec):
        self.spec = spec
        self.unit_size = spec.M(spec.h - 1)
        self.num_units = spec.num_endports // self.unit_size
        self._free: set[int] = set(range(self.num_units))
        self._jobs: dict[int, Job] = {}
        self._next_id = 0

    @property
    def free_units(self) -> list[int]:
        return sorted(self._free)

    @property
    def jobs(self) -> list[Job]:
        return [self._jobs[k] for k in sorted(self._jobs)]

    def units_needed(self, num_ranks: int) -> int:
        if num_ranks < 1:
            raise AllocationError("a job needs at least one rank")
        return -(-num_ranks // self.unit_size)

    def allocate(self, num_ranks: int,
                 node_type: str = DEFAULT_TYPE) -> Job:
        """Grant ``ceil(num_ranks / unit)`` units (lowest-index first).

        The job's active set covers whole units; ranks beyond
        ``num_ranks`` simply idle inside the last unit (the granted
        ports stay reserved either way, as a real scheduler would).
        ``node_type`` tags the job's traffic class (compute, storage,
        ...) for the isolation analyzer.
        """
        need = self.units_needed(num_ranks)
        if need > len(self._free):
            raise AllocationError(
                f"need {need} units for {num_ranks} ranks, "
                f"only {len(self._free)} free"
            )
        units = tuple(sorted(self._free)[:need])
        for u in units:
            self._free.remove(u)
        ports = np.concatenate([
            np.arange(u * self.unit_size, (u + 1) * self.unit_size)
            for u in units
        ])
        job = Job(job_id=self._next_id, units=units,
                  active_ports=ports[:num_ranks], node_type=node_type)
        self._next_id += 1
        self._jobs[job.job_id] = job
        return job

    def release(self, job: Job | int) -> None:
        job_id = job.job_id if isinstance(job, Job) else job
        if job_id not in self._jobs:
            raise AllocationError(f"unknown job id {job_id}")
        released = self._jobs.pop(job_id)
        self._free.update(released.units)

    def active_ports(self) -> np.ndarray:
        """Union of every live job's active end-ports (ascending).

        This is the fabric-wide ``active`` set the check pipeline and
        job-aware routing consume when certifying the cluster as a
        whole rather than one job at a time.
        """
        live = [self._jobs[k].active_ports for k in sorted(self._jobs)]
        if not live:
            return np.array([], dtype=np.int64)
        return np.unique(np.concatenate(live))

    def node_type_map(self, default: str = "idle") -> NodeTypeMap:
        """Fabric-wide :class:`~repro.fabric.nodetypes.NodeTypeMap`
        derived from the live jobs' ``node_type`` tags.

        Unallocated (and allocated-but-idle) end-ports get ``default``.
        Jobs sharing a ``node_type`` merge into one traffic class, so
        the isolation analyzer reasons about classes, not job ids.
        """
        ports: dict[str, list[np.ndarray]] = {}
        for k in sorted(self._jobs):
            job = self._jobs[k]
            ports.setdefault(job.node_type, []).append(job.active_ports)
        merged = {
            name: np.unique(np.concatenate(chunks))
            for name, chunks in sorted(ports.items())
        }
        return NodeTypeMap.from_ports(self.spec.num_endports, merged,
                                      default=default)

    def utilization(self) -> float:
        return 1.0 - len(self._free) / self.num_units
