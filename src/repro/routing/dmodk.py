"""D-Mod-K routing for PGFTs/RLFTs -- the paper's equation (1).

The closed form: a switch at level ``l`` routes *up* toward destination
``j`` through up-port ordinal

    ``Q_{l+1}(j) = floor(j / W_l) mod (w_{l+1} * p_{l+1})``

with ``W_l = w_1 * ... * w_l``.  The parent reached has w-digit
``Q mod w_{l+1}`` and the parallel cable used is ``Q // w_{l+1}``.

Descending, the child sub-tree is forced by ``j``'s m-digit ``a_l(j)``;
D-Mod-K picks the parallel cable ``k_l(j) = Q_l(j) // w_l`` -- i.e. the
down path to ``j`` retraces, level by level, exactly the cables the
up-routing rule dedicates to ``j``.  This makes the reverse path unique
(paper lemma 5: a single top switch carries all traffic to ``j``) and
gives every down port a single destination (theorem 2).

Partially-populated jobs ("Cont.-X" in Table 3) need the routing to
"match the MPI communication patterns": eq. (1) is applied to the
destination's **dense rank within the active set** instead of its raw
end-port index.  Active end-ports keep consecutive ranks, so every
lemma of the appendix goes through unchanged on the rank axis (a window
of at most ``K`` *consecutive ranks* still spreads over distinct
up-ports), restoring HSD = 1 for arbitrary random exclusions.  Pass the
active set via ``active=``; the full population is the identity ranking.

The module offers both the *closed form* (cheap scalar/ndarray
functions, used by property tests) and the materialised forwarding
tables consumed by the analysis and simulation layers.
"""

from __future__ import annotations

import numpy as np

from ..fabric.lft import ForwardingTables
from ..fabric.model import Fabric
from ..topology.spec import PGFTSpec
from .base import build_pgft_tables

__all__ = [
    "q_up",
    "q_profile",
    "q_split",
    "down_parallel_k",
    "route_dmodk",
    "DModKRouter",
    "dense_ranks",
]


def q_up(spec: PGFTSpec, level: int, dest: np.ndarray | int) -> np.ndarray:
    """``Q_level(dest)``: up-port ordinal used at level ``level-1`` toward
    ``dest`` (paper eq. 1).  ``level`` ranges ``1..h``.

    ``dest`` is the routing index -- the end-port index for full
    populations, or the dense active rank for job-aware routing.
    """
    spec._check_level(level)
    dest = np.asarray(dest, dtype=np.int64)
    return (dest // spec.W(level - 1)) % (spec.w[level - 1] * spec.p[level - 1])


def down_parallel_k(spec: PGFTSpec, level: int, dest: np.ndarray | int) -> np.ndarray:
    """Parallel-cable ordinal ``k_level(dest) = Q_level(dest) // w_level``
    used when descending from level ``level`` toward ``dest``."""
    return q_up(spec, level, dest) // spec.w[level - 1]


def q_profile(spec: PGFTSpec, dest: np.ndarray | int) -> np.ndarray:
    """All routing residues at once: ``Q_1(dest) .. Q_h(dest)``.

    Returns shape ``(h,) + dest.shape``; row ``l-1`` holds
    ``Q_l(dest) = floor(dest / W_{l-1}) mod (w_l * p_l)`` -- the complete
    residue-class signature eq. (1) assigns to a routing index.  The
    symbolic certifier reasons over these rows instead of materialised
    tables: two destinations share every up cable iff their profiles
    agree, so congruence on the profile *is* link identity.
    """
    dest = np.asarray(dest, dtype=np.int64)
    Wp = spec.W_prefix()
    out = np.empty((spec.h,) + dest.shape, dtype=np.int64)
    for level in range(1, spec.h + 1):
        out[level - 1] = (dest // Wp[level - 1]) % (
            spec.w[level - 1] * spec.p[level - 1])
    return out


def q_split(spec: PGFTSpec, level: int, dest: np.ndarray | int
            ) -> tuple[np.ndarray, np.ndarray]:
    """Decompose ``Q_level(dest)`` into ``(w_digit, parallel_k)``.

    The up-port ordinal ``Q = e + k * w_level`` addresses parent w-digit
    ``e`` over parallel cable ``k``; the pair is what both the wiring
    rule (paper Fig. 5) and the down-path retrace (lemma 5) consume.
    """
    q = q_up(spec, level, dest)
    w = spec.w[level - 1]
    return q % w, q // w


def dense_ranks(num_endports: int, active: np.ndarray | None) -> np.ndarray:
    """Routing index per end-port: identity, or the dense rank within a
    sorted ``active`` subset (inactive ports borrow the rank of the next
    active port -- they carry no job traffic, only reachability)."""
    if active is None:
        return np.arange(num_endports, dtype=np.int64)
    active = np.unique(np.asarray(active, dtype=np.int64))
    if len(active) == 0:
        raise ValueError("active set must not be empty")
    if active[0] < 0 or active[-1] >= num_endports:
        raise ValueError("active set references end-ports outside the fabric")
    return np.searchsorted(active, np.arange(num_endports)).astype(np.int64)


def route_dmodk(fabric: Fabric, active: np.ndarray | None = None) -> ForwardingTables:
    """Materialise D-Mod-K forwarding tables for a PGFT fabric.

    ``active`` (optional) lists the end-ports occupied by the job; the
    routing then spreads by dense active rank (job-aware D-Mod-K),
    keeping partially-populated collectives congestion-free.
    """
    spec = fabric.spec
    if spec is None:
        raise ValueError("D-Mod-K needs a PGFT-structured fabric")
    rank = dense_ranks(spec.num_endports, active)

    def up_choice(level: int, sw: np.ndarray, dest: np.ndarray) -> np.ndarray:
        return q_up(spec, level + 1, rank[dest])

    def down_parallel(level: int, sw: np.ndarray, dest: np.ndarray) -> np.ndarray:
        return down_parallel_k(spec, level, rank[dest])

    def host_choice(dest: np.ndarray) -> np.ndarray:
        return q_up(spec, 1, rank[dest])

    return build_pgft_tables(fabric, up_choice, down_parallel, host_choice)


class DModKRouter:
    """Callable router object (handy where a named engine is reported)."""

    name = "dmodk"

    def __init__(self, active: np.ndarray | None = None):
        self.active = active

    def __call__(self, fabric: Fabric) -> ForwardingTables:
        return route_dmodk(fabric, self.active)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "DModKRouter()"
