"""Randomised up-port routing baseline.

Destination-based and deadlock-free like D-Mod-K (still strictly
up*/down* on the tree), but the up-port used toward each destination is
drawn uniformly at random per ``(switch, destination)`` pair, and the
parallel down-cable likewise.  This mimics what a structure-oblivious
subnet manager produces on a fat tree: every destination is reachable
along minimal paths, yet nothing prevents many destinations of one
communication stage from sharing an up link -- the hot-spot source the
paper quantifies in section II.
"""

from __future__ import annotations

import numpy as np

from ..fabric.lft import ForwardingTables
from ..fabric.model import Fabric
from .base import build_pgft_tables, require_spec

__all__ = ["route_random", "RandomRouter"]


def route_random(fabric: Fabric, seed: int | np.random.Generator = 0) -> ForwardingTables:
    """Random up-port forwarding tables for a PGFT fabric."""
    tree = require_spec(fabric)
    spec = tree.spec
    rng = np.random.default_rng(seed)
    N = spec.num_endports

    def up_choice(level: int, sw: np.ndarray, dest: np.ndarray) -> np.ndarray:
        S = spec.switches_at(level)
        hi = spec.up_ports_at(level)
        return rng.integers(0, hi, size=(S, N))

    def down_parallel(level: int, sw: np.ndarray, dest: np.ndarray) -> np.ndarray:
        S = spec.switches_at(level)
        return rng.integers(0, spec.p[level - 1], size=(S, N))

    def host_choice(dest: np.ndarray) -> np.ndarray:
        return rng.integers(0, spec.up_ports_at(0), size=N)

    return build_pgft_tables(fabric, up_choice, down_parallel, host_choice)


class RandomRouter:
    """Callable wrapper with a fixed seed (deterministic per instance)."""

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def __call__(self, fabric: Fabric) -> ForwardingTables:
        return route_random(fabric, self.seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomRouter(seed={self.seed})"
