"""Forwarding-table repair after link failures.

Real subnet managers re-route around dead cables without recomputing
the whole fabric from scratch.  This module does the same for our
tables: entries that point at a dead port are re-assigned to a live
port on a *shortest path* through the degraded fabric, spreading the
detoured destinations round-robin over the candidates.

The result keeps D-Mod-K's behaviour everywhere the original routing
survives -- contention is only introduced where physics forces it (a
detour shares a live link with its original traffic).  The failures
experiment quantifies that graceful degradation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fabric.lft import ForwardingTables
from ..fabric.model import Fabric
from .minhop import bfs_distances

__all__ = ["repair_tables", "RepairReport"]


@dataclass(frozen=True)
class RepairReport:
    """What the repair touched."""

    tables: ForwardingTables
    repaired_entries: int        # (switch, dest) entries re-pointed
    dead_ports: int
    unreachable: tuple[int, ...]  # destinations no longer reachable

    @property
    def ok(self) -> bool:
        return not self.unreachable


def repair_tables(tables: ForwardingTables, fabric: Fabric) -> RepairReport:
    """Re-point dead entries of ``tables`` onto the degraded ``fabric``.

    ``fabric`` must be the degraded twin of ``tables.fabric`` (same
    port numbering; some cables removed, e.g. via
    :meth:`Fabric.with_failed_cables`).
    """
    if fabric.num_ports != tables.fabric.num_ports:
        raise ValueError("degraded fabric does not match the tables' fabric")
    N = fabric.num_endports
    dead = fabric.port_peer < 0
    sw_out = tables.switch_out.copy()

    # Destinations whose host cable died are gone entirely.
    host_ports = fabric.port_start[:N]
    lost_hosts = tuple(int(h) for h in np.flatnonzero(dead[host_ports]))

    repaired = 0
    if sw_out.size:
        dists = bfs_distances(fabric, np.arange(N))  # (N, V) on degraded net
        # An entry must be repaired when it points at a dead port OR is
        # no longer on a shortest path: keeping a non-minimal survivor
        # can bounce traffic back toward the failure (a routing loop),
        # so the repair is transitive -- every entry re-validates, and
        # strictly-descending distances make loops impossible.
        entry_dead = dead[sw_out]
        next_node = np.where(entry_dead, -1, fabric.peer_node[sw_out])
        nodes = N + np.arange(sw_out.shape[0])
        dest_idx = np.arange(N)
        d_here = dists[dest_idx[None, :], nodes[:, None]]
        d_next = np.where(next_node >= 0,
                          dists[dest_idx[None, :], next_node], -2)
        needs = entry_dead | (d_next != d_here - 1)
        rows, dests = np.nonzero(needs)
        for row, dest in zip(rows.tolist(), dests.tolist()):
            if dest in lost_hosts:
                sw_out[row, dest] = -1
                continue
            node = N + row
            ports = fabric.ports_of(node)
            live = ports[fabric.port_peer[ports] >= 0]
            peers = fabric.peer_node[live]
            if dists[dest, node] < 0:
                sw_out[row, dest] = -1
                continue
            cand = live[dists[dest, peers] == dists[dest, node] - 1]
            if len(cand) == 0:
                sw_out[row, dest] = -1
                continue
            sw_out[row, dest] = int(cand[dest % len(cand)])
            repaired += 1

    new_tables = ForwardingTables(
        fabric=fabric, switch_out=sw_out, host_up=tables.host_up
    )
    # A destination is declared unreachable when its host cable died or
    # any *live* switch was left without a candidate toward it
    # (conservative: some of those switches might never be asked).  A
    # switch that died entirely -- every port unconnected, as after
    # ``with_failed_switches`` -- routes nothing, because no packet can
    # enter it; its inevitable -1 row must not condemn the fabric.
    unreachable = set(lost_hosts)
    if sw_out.size:
        alive = (fabric.port_peer >= 0).astype(np.int64)
        sw_live = np.add.reduceat(alive, fabric.port_start[N:-1]) > 0
        unreachable.update(
            int(d) for d in np.flatnonzero((sw_out[sw_live] < 0).any(axis=0))
        )
    return RepairReport(
        tables=new_tables,
        repaired_entries=repaired,
        dead_ports=int(dead.sum()),
        unreachable=tuple(sorted(unreachable)),
    )
