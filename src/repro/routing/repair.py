"""Forwarding-table repair after link failures.

Real subnet managers re-route around dead cables without recomputing
the whole fabric from scratch.  This module does the same for our
tables, with two strategies:

* ``naive`` -- entries that point at a dead port (or stopped being on a
  shortest path) are re-assigned round-robin (``dest % candidates``)
  over the live shortest-path ports.  Cheap, reachability-restoring,
  but the modular spread can collide: two detoured destinations may
  land on the same surviving up-port, inflating that link's flow
  multiplicity by 2 where physics only forces 1.

* ``balanced`` -- the quality-aware Dmodk-style repair (after
  Gliksberg et al., "High-Quality Fault-Resiliency in Fat-Tree
  Networks"): the same *fault-local* entry set is re-pointed, but each
  detoured destination greedily picks the **least-loaded** surviving
  candidate port (load = destinations currently assigned to it,
  D-Mod-K's own spread included), with a ``dest``-rotated tie-break
  that keeps the closed form's modular flavour.  The result is a
  per-switch spread within one of the ceiling bound -- degraded
  fabrics stay near-balanced, which is what keeps contention local.

Both strategies touch exactly the same (switch, destination) entries
-- everywhere the original routing survives, the tables are
bit-identical to D-Mod-K.  That locality is what the incremental
symbolic re-certifier exploits: only flows whose healthy path crossed
a dead cable can have moved.  The failures/degradation experiments
quantify the quality gap between the two strategies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fabric.lft import ForwardingTables
from ..fabric.model import Fabric
from .minhop import bfs_distances

__all__ = [
    "repair_tables",
    "repair_tables_balanced",
    "RepairReport",
    "REPAIR_STRATEGIES",
    "destination_multiplicity",
    "worst_link_multiplicity",
    "score_repair",
]

#: registered repair strategies (``repair_tables(..., strategy=)``)
REPAIR_STRATEGIES = ("naive", "balanced")


@dataclass(frozen=True)
class RepairReport:
    """What the repair touched."""

    tables: ForwardingTables
    repaired_entries: int        # (switch, dest) entries re-pointed
    dead_ports: int
    unreachable: tuple[int, ...]  # destinations no longer reachable
    strategy: str = "naive"

    @property
    def ok(self) -> bool:
        return not self.unreachable


def destination_multiplicity(tables: ForwardingTables,
                             active: np.ndarray | None = None) -> np.ndarray:
    """Destinations routed through each directed switch link.

    Returns a per-global-port count of how many (reachable) destination
    entries of ``tables.switch_out`` use that port -- the static
    all-to-all flow-multiplicity accounting behind the ``RQL`` quality
    scores: a port serving ``k`` destinations carries up to ``k``
    concurrent flows under all-to-all traffic (healthy D-Mod-K makes
    this spread perfectly even).  ``active`` restricts the count to a
    job's destinations.  Host injection ports are not counted (a host
    link always carries exactly its own traffic).
    """
    sw_out = tables.switch_out
    if active is not None:
        sw_out = sw_out[:, np.unique(np.asarray(active, dtype=np.int64))]
    used = sw_out[sw_out >= 0]
    counts = np.zeros(tables.fabric.num_ports, dtype=np.int64)
    if used.size:
        np.add.at(counts, used, 1)
    return counts


def worst_link_multiplicity(tables: ForwardingTables,
                            active: np.ndarray | None = None) -> int:
    """Max of :func:`destination_multiplicity` -- the worst-link load
    a repair is scored by (lower is better; healthy D-Mod-K is the
    floor)."""
    counts = destination_multiplicity(tables, active=active)
    return int(counts.max()) if counts.size else 0


def score_repair(report: RepairReport) -> tuple[int, int, int]:
    """Static quality key of a repair (ascending = better).

    Orders first by destinations lost, then by the worst-link
    destination multiplicity, then by how many entries were touched --
    the comparison :class:`~repro.faults.HealingController` uses to
    pick the live repair.
    """
    return (len(report.unreachable),
            worst_link_multiplicity(report.tables),
            report.repaired_entries)


def _needed_entries(tables: ForwardingTables, fabric: Fabric,
                    dists: np.ndarray, dead: np.ndarray,
                    sw_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rows/dests of entries that must be re-pointed.

    An entry must be repaired when it points at a dead port OR is no
    longer on a shortest path: keeping a non-minimal survivor can
    bounce traffic back toward the failure (a routing loop), so the
    repair is transitive -- every entry re-validates, and
    strictly-descending distances make loops impossible.
    """
    N = fabric.num_endports
    entry_dead = dead[sw_out]
    next_node = np.where(entry_dead, -1, fabric.peer_node[sw_out])
    nodes = N + np.arange(sw_out.shape[0])
    dest_idx = np.arange(N)
    d_here = dists[dest_idx[None, :], nodes[:, None]]
    d_next = np.where(next_node >= 0,
                      dists[dest_idx[None, :], next_node], -2)
    needs = entry_dead | (d_next != d_here - 1)
    return np.nonzero(needs)


def _repair(tables: ForwardingTables, fabric: Fabric,
            strategy: str) -> RepairReport:
    if fabric.num_ports != tables.fabric.num_ports:
        raise ValueError("degraded fabric does not match the tables' fabric")
    if strategy not in REPAIR_STRATEGIES:
        raise ValueError(f"unknown repair strategy {strategy!r}; "
                         f"known: {REPAIR_STRATEGIES}")
    N = fabric.num_endports
    dead = fabric.port_peer < 0
    sw_out = tables.switch_out.copy()

    # Destinations whose host cable died are gone entirely.
    host_ports = fabric.port_start[:N]
    lost_hosts = tuple(int(h) for h in np.flatnonzero(dead[host_ports]))

    repaired = 0
    if sw_out.size:
        dists = bfs_distances(fabric, np.arange(N))  # (N, V) on degraded net
        rows, dests = _needed_entries(tables, fabric, dists, dead, sw_out)
        # Load per directed port: destinations currently assigned to it,
        # with the entries about to be re-pointed removed first so the
        # balanced strategy rebalances against the *surviving* spread.
        load = np.zeros(fabric.num_ports, dtype=np.int64)
        if strategy == "balanced":
            sw_tmp = sw_out.copy()
            sw_tmp[rows, dests] = -1
            used = sw_tmp[sw_tmp >= 0]
            if used.size:
                np.add.at(load, used, 1)
        for row, dest in zip(rows.tolist(), dests.tolist()):
            if dest in lost_hosts:
                sw_out[row, dest] = -1
                continue
            node = N + row
            ports = fabric.ports_of(node)
            live = ports[fabric.port_peer[ports] >= 0]
            peers = fabric.peer_node[live]
            if dists[dest, node] < 0:
                sw_out[row, dest] = -1
                continue
            cand = live[dists[dest, peers] == dists[dest, node] - 1]
            if len(cand) == 0:
                sw_out[row, dest] = -1
                continue
            if strategy == "naive":
                pick = int(cand[dest % len(cand)])
            else:
                # Least-loaded surviving candidate; scan from the
                # D-Mod-K-ish rotation point so ties spread modularly
                # and the choice stays a pure function of the inputs.
                rot = np.roll(cand, -(dest % len(cand)))
                pick = int(rot[int(np.argmin(load[rot]))])
                load[pick] += 1
            sw_out[row, dest] = pick
            repaired += 1

    new_tables = ForwardingTables(
        fabric=fabric, switch_out=sw_out, host_up=tables.host_up
    )
    # A destination is declared unreachable when its host cable died or
    # any *live* switch was left without a candidate toward it
    # (conservative: some of those switches might never be asked).  A
    # switch that died entirely -- every port unconnected, as after
    # ``with_failed_switches`` -- routes nothing, because no packet can
    # enter it; its inevitable -1 row must not condemn the fabric.
    unreachable = set(lost_hosts)
    if sw_out.size:
        alive = (fabric.port_peer >= 0).astype(np.int64)
        sw_live = np.add.reduceat(alive, fabric.port_start[N:-1]) > 0
        unreachable.update(
            int(d) for d in np.flatnonzero((sw_out[sw_live] < 0).any(axis=0))
        )
    return RepairReport(
        tables=new_tables,
        repaired_entries=repaired,
        dead_ports=int(dead.sum()),
        unreachable=tuple(sorted(unreachable)),
        strategy=strategy,
    )


def repair_tables(tables: ForwardingTables, fabric: Fabric,
                  strategy: str = "naive") -> RepairReport:
    """Re-point dead entries of ``tables`` onto the degraded ``fabric``.

    ``fabric`` must be the degraded twin of ``tables.fabric`` (same
    port numbering; some cables removed, e.g. via
    :meth:`Fabric.with_failed_cables`).  ``strategy`` selects how
    detoured destinations spread over the surviving candidates:
    ``"naive"`` round-robin (historical behaviour), ``"balanced"``
    least-loaded with rotated tie-break (see the module docstring).
    """
    return _repair(tables, fabric, strategy)


def repair_tables_balanced(tables: ForwardingTables,
                           fabric: Fabric) -> RepairReport:
    """The quality-aware repair: :func:`repair_tables` with
    ``strategy="balanced"``."""
    return _repair(tables, fabric, "balanced")
