"""Channel-dependency-graph deadlock analysis.

Wormhole/virtual-cut-through networks with credit flow control deadlock
iff the *channel dependency graph* (CDG) has a cycle: vertices are the
directed links (channels), and link ``a`` depends on link ``b`` when
some route traverses ``a`` immediately followed by ``b`` (a packet
holding ``a``'s buffer may wait for ``b``'s).

Up*/down* routing on trees is the textbook acyclic case; this module
*proves* it for a concrete forwarding table instead of assuming it --
and catches engines (or hand-edited LFTs) that introduce valleys.

The CDG is built from every (src, dst) pair's route using the
vectorised path walker, so it is exact for destination-based tables.
"""

from __future__ import annotations

import numpy as np

from ..analysis.hsd import walk_flow_links
from ..fabric.lft import ForwardingTables

__all__ = ["channel_dependencies", "find_cycle", "assert_deadlock_free"]


def channel_dependencies(tables: ForwardingTables) -> set[tuple[int, int]]:
    """All (link a -> link b) dependencies induced by all-pairs routes."""
    fab = tables.fabric
    N = fab.num_endports
    src = np.repeat(np.arange(N), N)
    dst = np.tile(np.arange(N), N)
    flow_idx, gports = walk_flow_links(tables, src, dst)
    deps: set[tuple[int, int]] = set()
    # walk_flow_links emits hop levels grouped: within a flow the links
    # appear in path order but interleaved across flows; regroup.
    order = np.lexsort((np.arange(len(flow_idx)), flow_idx))
    f_sorted = flow_idx[order]
    g_sorted = gports[order]
    same_flow = f_sorted[1:] == f_sorted[:-1]
    a = g_sorted[:-1][same_flow]
    b = g_sorted[1:][same_flow]
    pairs = np.unique(np.stack([a, b], axis=1), axis=0)
    deps.update(map(tuple, pairs.tolist()))
    return deps


def find_cycle(deps: set[tuple[int, int]]) -> list[int] | None:
    """Return one dependency cycle (as a list of links) or ``None``.

    Iterative DFS with colouring; deterministic order for reproducible
    error reports.
    """
    adj: dict[int, list[int]] = {}
    for a, b in sorted(deps):
        adj.setdefault(a, []).append(b)
    WHITE, GREY, BLACK = 0, 1, 2
    colour: dict[int, int] = {}
    parent: dict[int, int] = {}

    for root in sorted(adj):
        if colour.get(root, WHITE) != WHITE:
            continue
        stack = [(root, iter(adj.get(root, ())))]
        colour[root] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                c = colour.get(nxt, WHITE)
                if c == GREY:
                    # Found a back edge: reconstruct the cycle.
                    cycle = [nxt, node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    return cycle
                if c == WHITE:
                    colour[nxt] = GREY
                    parent[nxt] = node
                    stack.append((nxt, iter(adj.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def assert_deadlock_free(tables: ForwardingTables) -> int:
    """Raise :class:`~repro.routing.validate.RoutingError` with the
    offending cycle if the CDG has one; returns the number of
    dependencies otherwise.

    (Despite the historical name this does not use ``assert`` -- the
    check survives ``python -O``.)
    """
    from .validate import RoutingError

    deps = channel_dependencies(tables)
    cycle = find_cycle(deps)
    if cycle is not None:
        fab = tables.fabric
        desc = " -> ".join(
            f"{fab.node_names[fab.port_owner[gp]]}[{int(fab.local_port(gp))}]"
            for gp in cycle
        )
        raise RoutingError(f"channel dependency cycle: {desc}")
    return len(deps)
