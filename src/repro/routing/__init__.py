"""Routing engines producing destination-based forwarding tables.

* :func:`~repro.routing.dmodk.route_dmodk` -- the paper's D-Mod-K
  (eq. 1), contention-free for Shift traffic on RLFTs.
* :func:`~repro.routing.minhop.route_minhop` -- generic min-hop with
  round-robin / random / first tie-breaking (baselines).
* :func:`~repro.routing.random_router.route_random` -- random up-port
  selection on PGFTs (hot-spot-prone baseline).
* :func:`~repro.routing.typeaware.route_typeaware` -- node-type-aware
  D-Mod-K (eq. 1 over per-traffic-class dense ranks).
* :mod:`~repro.routing.validate` -- reachability / up-down / theorem-2
  validators.
"""

from .base import Router, build_pgft_tables
from .deadlock import assert_deadlock_free, channel_dependencies, find_cycle
from .dmodk import DModKRouter, dense_ranks, down_parallel_k, q_up, route_dmodk
from .ftree import FTreeRouter, route_ftree
from .minhop import MinHopRouter, bfs_distances, route_minhop
from .random_router import RandomRouter, route_random
from .repair import RepairReport, repair_tables
from .typeaware import TypeAwareRouter, route_typeaware, typed_ranks
from .validate import (
    RoutingError,
    check_reachability,
    check_up_down,
    down_port_destinations,
    trace_route,
)

__all__ = [
    "DModKRouter",
    "FTreeRouter",
    "MinHopRouter",
    "RandomRouter",
    "RepairReport",
    "Router",
    "RoutingError",
    "TypeAwareRouter",
    "assert_deadlock_free",
    "bfs_distances",
    "channel_dependencies",
    "find_cycle",
    "build_pgft_tables",
    "check_reachability",
    "check_up_down",
    "dense_ranks",
    "down_parallel_k",
    "down_port_destinations",
    "q_up",
    "repair_tables",
    "route_dmodk",
    "route_ftree",
    "route_minhop",
    "route_random",
    "route_typeaware",
    "trace_route",
    "typed_ranks",
]
