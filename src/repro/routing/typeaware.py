"""Node-type-aware D-Mod-K routing: eq. (1) on per-type dense ranks.

Type-blind D-Mod-K applies eq. (1) to the destination's global
end-port index (or its dense rank within the job's active set).  On a
heterogeneous fabric the traffic that matters is *per class*: the
compute population runs its collective over compute ranks, the storage
population streams over storage ranks.  When a class occupies
irregular positions (see :meth:`~repro.fabric.nodetypes.NodeTypeMap.
staggered`), its members' routing indices acquire gaps, windows of
consecutive class ranks stop spreading over distinct up-ports, and the
appendix lemmas no longer protect the class's own collective.

The fix (Gliksberg et al., arXiv 2211.11818, adapted to PGFTs): route
every destination by its **dense rank within its own type** (further
restricted to the job's active set, mirroring Cont.-X).  Each class
then sees exactly the ranking the paper's theorems need, so every
class's constant-displacement collective stays contention-free on its
own -- while cross-class link sharing remains and is bounded by the
isolation analyzer (:mod:`repro.check.isolation`).

With a single type (or no type map) the per-type ranks degenerate to
the plain dense ranks, making :func:`route_typeaware` bit-identical to
:func:`~repro.routing.dmodk.route_dmodk` -- a property the test suite
asserts.
"""

from __future__ import annotations

import numpy as np

from ..fabric.lft import ForwardingTables
from ..fabric.model import Fabric
from ..fabric.nodetypes import NodeTypeMap
from .base import build_pgft_tables
from .dmodk import down_parallel_k, q_up

__all__ = ["typed_ranks", "route_typeaware", "TypeAwareRouter"]


def typed_ranks(num_endports: int, types: NodeTypeMap | np.ndarray | None,
                active: np.ndarray | None = None) -> np.ndarray:
    """Routing index per end-port: the dense rank within the port's own
    type (intersected with ``active`` when given).

    Mirrors :func:`~repro.routing.dmodk.dense_ranks` per class: active
    members of a type get consecutive ranks ``0..n_c-1`` in port
    order; inactive (or excluded) ports borrow the rank of the next
    active port of their type, so they stay routable without
    disturbing the class's rank density.  ``types`` may be a
    :class:`~repro.fabric.nodetypes.NodeTypeMap`, a raw per-port class
    index array, or ``None`` (single class -- the identity/dense-rank
    degenerate case).
    """
    if types is None:
        type_of = np.zeros(num_endports, dtype=np.int64)
    elif isinstance(types, NodeTypeMap):
        type_of = types.type_of
    else:
        type_of = np.asarray(types, dtype=np.int64)
    if len(type_of) != num_endports:
        raise ValueError(f"type map covers {len(type_of)} end-ports, "
                         f"fabric has {num_endports}")
    if active is None:
        active_mask = np.ones(num_endports, dtype=bool)
    else:
        act = np.unique(np.asarray(active, dtype=np.int64))
        if len(act) == 0:
            raise ValueError("active set must not be empty")
        if act[0] < 0 or act[-1] >= num_endports:
            raise ValueError("active set references end-ports outside "
                             "the fabric")
        active_mask = np.zeros(num_endports, dtype=bool)
        active_mask[act] = True

    ridx = np.zeros(num_endports, dtype=np.int64)
    for t in np.unique(type_of):
        members = np.flatnonzero(type_of == t)
        act_members = members[active_mask[members]]
        # searchsorted gives dense ranks to active members and lets the
        # inactive ones borrow the next active rank (dense_ranks
        # semantics, restricted to the class).
        ridx[members] = np.searchsorted(act_members, members)
    return ridx


def route_typeaware(fabric: Fabric,
                    types: NodeTypeMap | np.ndarray | None = None,
                    active: np.ndarray | None = None) -> ForwardingTables:
    """Materialise node-type-aware D-Mod-K forwarding tables.

    ``types`` defaults to ``fabric.node_types`` (homogeneous when that
    is ``None`` too, making the result bit-identical to
    :func:`~repro.routing.dmodk.route_dmodk`).  ``active`` optionally
    restricts ranks to the job's active end-ports, exactly as in
    job-aware D-Mod-K.
    """
    spec = fabric.spec
    if spec is None:
        raise ValueError("type-aware D-Mod-K needs a PGFT-structured fabric")
    if types is None:
        types = fabric.node_types
    rank = typed_ranks(spec.num_endports, types, active)

    def up_choice(level: int, sw: np.ndarray, dest: np.ndarray) -> np.ndarray:
        return q_up(spec, level + 1, rank[dest])

    def down_parallel(level: int, sw: np.ndarray,
                      dest: np.ndarray) -> np.ndarray:
        return down_parallel_k(spec, level, rank[dest])

    def host_choice(dest: np.ndarray) -> np.ndarray:
        return q_up(spec, 1, rank[dest])

    return build_pgft_tables(fabric, up_choice, down_parallel, host_choice)


class TypeAwareRouter:
    """Callable router object (handy where a named engine is reported)."""

    name = "typeaware"

    def __init__(self, types: NodeTypeMap | np.ndarray | None = None,
                 active: np.ndarray | None = None):
        self.types = types
        self.active = active

    def __call__(self, fabric: Fabric) -> ForwardingTables:
        return route_typeaware(fabric, self.types, self.active)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "TypeAwareRouter()"
