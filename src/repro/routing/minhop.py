"""Generic minimum-hop routing with per-destination load spreading.

Works on *any* fabric (no PGFT spec needed): a breadth-first distance
field is computed from every destination end-port, and each switch
forwards toward any port whose peer is strictly closer to the
destination.  Ties are broken either

* ``"roundrobin"`` -- the candidate list is indexed by ``dest mod
  #candidates`` (OpenSM's counting min-hop behaves similarly), or
* ``"random"``  -- a seeded uniform draw per ``(switch, destination)``,
* ``"first"``   -- always the lowest-numbered candidate port (a
  deliberately terrible baseline that funnels everything together).

On RLFTs all minimal paths are up*/down*, so this engine is
deadlock-free there; on arbitrary graphs it is plain shortest-path
routing and the up/down validator should be consulted separately.
"""

from __future__ import annotations

import numpy as np

from ..fabric.lft import ForwardingTables
from ..fabric.model import Fabric

__all__ = ["route_minhop", "MinHopRouter", "bfs_distances"]


def bfs_distances(fabric: Fabric, sources: np.ndarray) -> np.ndarray:
    """Unweighted hop distances ``dist[i, v]`` from ``sources[i]`` to every
    node ``v`` (vectorised frontier BFS over all sources at once)."""
    V = fabric.num_nodes
    S = len(sources)
    dist = np.full((S, V), -1, dtype=np.int32)
    dist[np.arange(S), sources] = 0
    # Neighbor lists in CSR form mirroring the port layout.
    peer = fabric.peer_node  # (P,)
    frontier = dist == 0
    d = 0
    while frontier.any():
        d += 1
        # Nodes adjacent to the frontier: a node v is adjacent iff any of
        # its ports' peers is in the frontier.
        # Compute per-port "peer in frontier", then OR-reduce per owner.
        pin = np.zeros((S, fabric.num_ports), dtype=bool)
        valid = peer >= 0
        pin[:, valid] = frontier[:, peer[valid]]
        nxt = np.zeros((S, V), dtype=bool)
        np.logical_or.reduceat(pin, fabric.port_start[:-1], axis=1, out=nxt)
        nxt &= dist < 0
        dist[nxt] = d
        frontier = nxt
    return dist


def route_minhop(
    fabric: Fabric,
    balance: str = "roundrobin",
    seed: int | np.random.Generator = 0,
) -> ForwardingTables:
    """Min-hop forwarding tables for any connected fabric."""
    if balance not in ("roundrobin", "random", "first"):
        raise ValueError(f"unknown balance policy {balance!r}")
    rng = np.random.default_rng(seed)
    N = fabric.num_endports
    dests = np.arange(N)
    dist = bfs_distances(fabric, dests)  # (N, V)
    if (dist < 0).any():
        raise ValueError("fabric is disconnected; min-hop cannot route")

    peer = fabric.peer_node
    valid = peer >= 0
    num_sw = fabric.num_switches
    switch_out = np.full((num_sw, N), -1, dtype=np.int64)

    for row in range(num_sw):
        node = N + row
        p0, p1 = int(fabric.port_start[node]), int(fabric.port_start[node + 1])
        ports = np.arange(p0, p1)
        ok = valid[p0:p1]
        peers = peer[p0:p1]
        # cand[d, q] : port q of this switch is on a shortest path to d.
        cand = np.zeros((N, p1 - p0), dtype=bool)
        cand[:, ok] = dist[:, peers[ok]] == (dist[:, node] - 1)[:, None]
        cnt = cand.sum(axis=1)
        if (cnt == 0).any():
            raise ValueError(f"switch {node} has no candidate toward some dest")
        if balance == "roundrobin":
            pick = dests % cnt
        elif balance == "random":
            pick = rng.integers(0, cnt)
        else:  # "first"
            pick = np.zeros(N, dtype=np.int64)
        rank = np.cumsum(cand, axis=1) - 1
        sel = cand & (rank == pick[:, None])
        switch_out[row] = ports[np.argmax(sel, axis=1)]

    host_up = None
    if np.any(np.diff(fabric.port_start[: N + 1]) > 1):
        # Multi-rail hosts: spread destinations across rails.
        counts = np.diff(fabric.port_start[: N + 1])
        host_up = (dests[None, :] % counts[:, None]).astype(np.int32)
    return ForwardingTables(fabric=fabric, switch_out=switch_out, host_up=host_up)


class MinHopRouter:
    """Callable wrapper storing the balance policy and seed."""

    def __init__(self, balance: str = "roundrobin", seed: int = 0):
        self.balance = balance
        self.seed = seed
        self.name = f"minhop-{balance}"

    def __call__(self, fabric: Fabric) -> ForwardingTables:
        return route_minhop(fabric, self.balance, self.seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MinHopRouter(balance={self.balance!r}, seed={self.seed})"
