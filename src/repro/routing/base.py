"""Routing engine interface and shared PGFT routing scaffolding.

A *routing engine* consumes a wired :class:`~repro.fabric.model.Fabric`
and produces destination-based
:class:`~repro.fabric.lft.ForwardingTables`.  Everything downstream
(hot-spot analysis, fluid and packet simulators) only reads tables, so
engines are interchangeable.

PGFT-structured engines (D-Mod-K and the randomised baseline) share the
same skeleton: at a level-``l`` switch the route toward end-port ``j``
either *descends* -- when the switch is an ancestor of ``j`` -- through
the down port pointing at ``j``'s sub-tree, or *ascends* through some up
port.  Engines differ only in two choices:

* which of the ``p_l`` parallel cables to use when descending, and
* which up port to use when ascending.

:func:`build_pgft_tables` factors that skeleton out; concrete engines
supply the two choice functions as vectorised callbacks.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from ..fabric.lft import ForwardingTables
from ..fabric.model import Fabric
from ..topology.pgft import PGFT, endport_digits

__all__ = ["Router", "build_pgft_tables", "require_spec"]


class Router(Protocol):
    """Anything that turns a fabric into forwarding tables."""

    def __call__(self, fabric: Fabric) -> ForwardingTables: ...


def require_spec(fabric: Fabric) -> PGFT:
    """Return the PGFT helper for a spec-carrying fabric or raise."""
    if fabric.spec is None:
        raise ValueError(
            "this routing engine needs a PGFT-structured fabric "
            "(fabric.spec is None); use the min-hop engine for generic fabrics"
        )
    return PGFT(fabric.spec)


def build_pgft_tables(
    fabric: Fabric,
    up_choice: Callable[[int, np.ndarray, np.ndarray], np.ndarray],
    down_parallel: Callable[[int, np.ndarray, np.ndarray], np.ndarray],
    host_choice: Callable[[np.ndarray], np.ndarray] | None = None,
) -> ForwardingTables:
    """Assemble forwarding tables for a PGFT fabric.

    Parameters
    ----------
    up_choice:
        ``up_choice(level, switch_index, dest)`` -> up-port ordinal in
        ``[0, w_{level+1} * p_{level+1})`` for switches at ``level`` that
        are *not* ancestors of ``dest``.  Arrays are broadcast to the full
        ``(num_switches_at_level, N)`` grid.
    down_parallel:
        ``down_parallel(level, switch_index, dest)`` -> parallel-cable
        ordinal ``k in [0, p_level)`` used when descending toward
        ``dest``; the child digit is forced by ``dest`` itself.
    host_choice:
        ``host_choice(dest)`` -> local up port a host uses toward
        ``dest``; defaults to port 0 (single-rail hosts).
    """
    tree = require_spec(fabric)
    spec = tree.spec
    N = spec.num_endports
    dest = np.arange(N, dtype=np.int64)
    jdig = endport_digits(spec, dest)  # (N, h)

    rows = []
    for level in spec.iter_levels():
        S = spec.switches_at(level)
        sw = np.arange(S, dtype=np.int64)
        m_l = spec.m[level - 1]
        n_down = spec.down_ports_at(level)

        anc = tree.ancestor_mask(level, sw[:, None], dest[None, :])  # (S, N)
        k = np.broadcast_to(
            np.asarray(down_parallel(level, sw[:, None], dest[None, :])), (S, N)
        )
        down_local = jdig[None, :, level - 1] + k * m_l
        if level == spec.h:
            local = down_local
            if not anc.all():
                from .validate import RoutingError

                raise RoutingError(
                    "top-level switches must reach everything")
        else:
            up = np.broadcast_to(
                np.asarray(up_choice(level, sw[:, None], dest[None, :])), (S, N)
            )
            local = np.where(anc, down_local, n_down + up)

        node = fabric.switch_node(level, sw)
        rows.append(fabric.port_start[node][:, None] + local)

    switch_out = np.concatenate(rows, axis=0).astype(np.int64)

    host_up = None
    if spec.up_ports_at(0) > 1:
        choice = host_choice(dest) if host_choice else np.zeros(N, dtype=np.int64)
        host_up = np.broadcast_to(choice, (N, N)).astype(np.int32).copy()
    return ForwardingTables(fabric=fabric, switch_out=switch_out, host_up=host_up)
