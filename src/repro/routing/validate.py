"""Routing validators: reachability, up*/down* shape, theorem-2 checks.

These are the safety nets every routing engine is run through in the
test suite.  They are thin *raising* wrappers over the corresponding
:mod:`repro.check` passes -- one implementation of each invariant lives
in the analyzer, and these entry points keep the historical
raise-on-first-violation API:

* :func:`check_reachability` -- every (src, dst) pair terminates within
  the tree diameter (``RTE001``/``RTE002``); returns the hop-count
  matrix.
* :func:`check_up_down` -- every path ascends zero or more levels and
  then descends (no "valleys", ``RTE010``), the classic
  deadlock-freedom shape for fat-tree routing.
* :func:`down_port_destinations` -- per down-going directed link, the
  number of destinations whose (unique, destination-based) route uses
  it; theorem 2 states D-Mod-K yields at most one on complete RLFTs.
  This is the deliberately scalar *reference* walker that
  cross-validates the vectorised
  :func:`repro.analysis.hsd.down_port_destination_counts`.
"""

from __future__ import annotations

import numpy as np

from ..fabric.lft import ForwardingTables

__all__ = [
    "check_reachability",
    "check_up_down",
    "down_port_destinations",
    "trace_route",
    "RoutingError",
]


class RoutingError(Exception):
    """A routing invariant was violated.

    Deliberately **not** an ``AssertionError`` subclass: ``python -O``
    strips ``assert`` statements, and an exception type rooted in
    ``AssertionError`` invites callers to guard these checks the same
    way.  The validators must keep firing in optimised runs.
    """


def _lint(tables: ForwardingTables, passes):
    """Run check passes over ``tables``; raise :class:`RoutingError`
    with the first error finding, return the pass artifacts."""
    # Imported lazily: repro.check imports routing primitives at module
    # level, so the reverse edge must not exist at import time.
    from ..check.diagnostics import DiagnosticReport
    from ..check.passes import CheckContext

    ctx = CheckContext.for_tables(tables)
    report = DiagnosticReport()
    for p in passes:
        if p.applicable(ctx):
            p.run(ctx, report)
    if report.has_errors:
        raise RoutingError(report.diagnostics[0].render())
    return ctx.artifacts


def trace_route(tables: ForwardingTables, src: int, dst: int,
                max_hops: int = 64) -> list[int]:
    """Global port ids traversed from ``src`` to ``dst`` (directed)."""
    fab = tables.fabric
    if src == dst:
        return []
    path = []
    gp = int(tables.host_out_port(src, dst))
    path.append(gp)
    cur = int(fab.peer_node[gp])
    for _ in range(max_hops):
        if cur == dst:
            return path
        if cur < 0:
            raise RoutingError(
                f"route {src}->{dst} walks into a dead cable")
        gp = int(tables.out_port(cur, dst))
        if gp < 0:
            raise RoutingError(f"dead end at node {cur} toward {dst}")
        path.append(gp)
        cur = int(fab.peer_node[gp])
    raise RoutingError(f"route {src}->{dst} exceeded {max_hops} hops (loop?)")


def check_reachability(tables: ForwardingTables) -> np.ndarray:
    """Hop-count matrix; raises :class:`RoutingError` on any failure."""
    from ..check.routing_lint import ReachabilityPass

    artifacts = _lint(tables, [ReachabilityPass()])
    return artifacts["hops"]


def check_up_down(tables: ForwardingTables, sample: int | None = None,
                  seed: int = 0) -> None:
    """Verify the up-then-down shape of every (or a sampled set of) route.

    ``sample`` bounds the number of (src, dst) pairs checked on large
    fabrics; ``None`` checks all pairs.
    """
    from ..check.routing_lint import UpDownPass

    try:
        _lint(tables, [UpDownPass(sample=sample, seed=seed, strict=True)])
    except ValueError as exc:
        # strict walks surface broken routes (dead ends / loops) here
        raise RoutingError(str(exc)) from exc


def down_port_destinations(tables: ForwardingTables) -> np.ndarray:
    """Number of distinct destinations carried by each down-going directed
    link under all-to-all traffic.

    Returns an array over global port ids; up-going and host ports hold
    zero.  Theorem 2: D-Mod-K on a complete RLFT gives at most one
    destination per down port.
    """
    fab = tables.fabric
    N = fab.num_endports
    goes_up = fab.port_goes_up()
    used = np.zeros((fab.num_ports,), dtype=np.int64)
    # Walk each destination's routes from every source; count *distinct*
    # destinations per directed port by per-destination marking.
    for dst in range(N):
        marked: set[int] = set()
        for src in range(N):
            if src == dst:
                continue
            for gp in trace_route(tables, src, dst):
                if not goes_up[gp] and gp not in marked:
                    marked.add(gp)
                    used[gp] += 1
    return used
