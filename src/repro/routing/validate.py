"""Routing validators: reachability, up*/down* shape, theorem-2 checks.

These are the safety nets every routing engine is run through in the
test suite:

* :func:`check_reachability` -- every (src, dst) pair terminates within
  the tree diameter; returns the hop-count matrix.
* :func:`check_up_down` -- every path ascends zero or more levels and
  then descends (no "valleys"), the classic deadlock-freedom shape for
  fat-tree routing.
* :func:`down_port_destinations` -- per down-going directed link, the
  set size of destinations whose (unique, destination-based) route uses
  it; theorem 2 states D-Mod-K yields at most one on complete RLFTs.
* :func:`top_switch_of` -- the top-level switch carrying all traffic to
  each destination (lemma 5) -- ``None``-free only for tree-shaped
  tables.
"""

from __future__ import annotations

import numpy as np

from ..fabric.lft import ForwardingTables

__all__ = [
    "check_reachability",
    "check_up_down",
    "down_port_destinations",
    "trace_route",
    "RoutingError",
]


class RoutingError(AssertionError):
    """A routing invariant was violated."""


def trace_route(tables: ForwardingTables, src: int, dst: int,
                max_hops: int = 64) -> list[int]:
    """Global port ids traversed from ``src`` to ``dst`` (directed)."""
    fab = tables.fabric
    if src == dst:
        return []
    path = []
    gp = int(tables.host_out_port(src, dst))
    path.append(gp)
    cur = int(fab.peer_node[gp])
    for _ in range(max_hops):
        if cur == dst:
            return path
        gp = int(tables.out_port(cur, dst))
        if gp < 0:
            raise RoutingError(f"dead end at node {cur} toward {dst}")
        path.append(gp)
        cur = int(fab.peer_node[gp])
    raise RoutingError(f"route {src}->{dst} exceeded {max_hops} hops (loop?)")


def check_reachability(tables: ForwardingTables) -> np.ndarray:
    """Hop-count matrix; raises :class:`RoutingError` on any failure."""
    hops = tables.paths_matrix()
    if (hops < 0).any():
        bad = np.argwhere(hops < 0)[0]
        raise RoutingError(f"unreachable pair src={bad[0]} dst={bad[1]}")
    return hops


def check_up_down(tables: ForwardingTables, sample: int | None = None,
                  seed: int = 0) -> None:
    """Verify the up-then-down shape of every (or a sampled set of) route.

    ``sample`` bounds the number of (src, dst) pairs checked on large
    fabrics; ``None`` checks all pairs.
    """
    fab = tables.fabric
    N = fab.num_endports
    pairs = [(s, d) for s in range(N) for d in range(N) if s != d]
    if sample is not None and sample < len(pairs):
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(pairs), size=sample, replace=False)
        pairs = [pairs[i] for i in idx]
    lvl = fab.node_level
    for s, d in pairs:
        path = trace_route(tables, s, d)
        levels = [int(lvl[fab.port_owner[gp]]) for gp in path] + [0]
        went_down = False
        for a, b in zip(levels, levels[1:]):
            if b > a and went_down:
                raise RoutingError(
                    f"route {s}->{d} ascends after descending: levels {levels}"
                )
            if b < a:
                went_down = True


def down_port_destinations(tables: ForwardingTables) -> np.ndarray:
    """Number of distinct destinations carried by each down-going directed
    link under all-to-all traffic.

    Returns an array over global port ids; up-going and host ports hold
    zero.  Theorem 2: D-Mod-K on a complete RLFT gives at most one
    destination per down port.
    """
    fab = tables.fabric
    N = fab.num_endports
    goes_up = fab.port_goes_up()
    used = np.zeros((fab.num_ports,), dtype=np.int64)
    # Walk each destination's routes from every source; count *distinct*
    # destinations per directed port by per-destination marking.
    for dst in range(N):
        marked: set[int] = set()
        for src in range(N):
            if src == dst:
                continue
            for gp in trace_route(tables, src, dst):
                if not goes_up[gp] and gp not in marked:
                    marked.add(gp)
                    used[gp] += 1
    return used
