"""Counting-based fat-tree routing (subnet-manager heuristic baseline).

Production subnet managers historically balanced fat-tree routes with
*counters*: walk destinations in some order and give each switch's next
up-routed destination the least-used up port (round-robin).  This
engine reproduces that heuristic:

* ascending entries: at each switch the non-descendant destinations are
  assigned to up-ports round-robin in destination processing order;
* descending entries: within each child sub-tree, destinations take the
  ``p_l`` parallel cables round-robin.

Three instructive limits, all captured in the test suite and the
ablation bench -- together they explain *why* the paper's closed form
matters:

* on **2-level single-cable** fabrics the counters land on bit-identical
  tables to D-Mod-K (and min-hop round-robin behaves the same way):
  at a leaf, "every ``K``-th destination" and "destination mod ``K``"
  coincide;
* on **3-level** trees they diverge and congest (worst HSD 3 on the
  maximal arity-3 RLFT): above the leaves, D-Mod-K groups destinations
  by ``floor(j / W_l)`` -- consecutive destinations must *share* an
  up-port so that the groups, not the individuals, round-robin.  A
  per-destination counter balances counts perfectly yet breaks the
  modular structure the congestion-freedom proof needs;
* on **parallel-cable** fabrics the down-cable counters can mis-align
  with the up-cable choice even at 2 levels (the paper's 16-node PGFT:
  per-child stride 2 is even, so a Shift stage doubles up on a cable);
  and with randomised processing order (``shuffle=True``, an SM walking
  LIDs in discovery order) hot spots return everywhere.
"""

from __future__ import annotations

import numpy as np

from ..fabric.lft import ForwardingTables
from ..fabric.model import Fabric
from ..topology.pgft import endport_digits
from .base import build_pgft_tables, require_spec

__all__ = ["route_ftree", "FTreeRouter"]


def route_ftree(fabric: Fabric, shuffle: bool = False,
                seed: int | np.random.Generator = 0) -> ForwardingTables:
    """Counting-based forwarding tables for a PGFT fabric.

    ``shuffle=True`` processes destinations in a random order instead of
    index order (counters still balance *counts* perfectly -- but not
    the modular structure the congestion-freedom proof needs).
    """
    tree = require_spec(fabric)
    spec = tree.spec
    N = spec.num_endports
    rng = np.random.default_rng(seed)
    proc = rng.permutation(N) if shuffle else np.arange(N)
    # rank_of[j] = position of destination j in processing order.
    rank_of = np.empty(N, dtype=np.int64)
    rank_of[proc] = np.arange(N)
    jdig = endport_digits(spec, np.arange(N))

    def up_choice(level: int, sw: np.ndarray, dest: np.ndarray) -> np.ndarray:
        S = spec.switches_at(level)
        n_up = spec.up_ports_at(level)
        anc = tree.ancestor_mask(
            level, np.arange(S)[:, None], np.arange(N)[None, :]
        )
        # Round-robin counter over non-descendant dests, in processing
        # order: sort columns by rank_of, cumulative-count, unsort.
        order = np.argsort(rank_of, kind="stable")
        not_anc = ~anc[:, order]
        counter = np.cumsum(not_anc, axis=1) - 1
        q = np.empty_like(counter)
        q[:, order] = counter % n_up
        return q

    def down_parallel(level: int, sw: np.ndarray, dest: np.ndarray) -> np.ndarray:
        p_l = spec.p[level - 1]
        if p_l == 1:
            return np.zeros((1, N), dtype=np.int64)
        a = jdig[:, level - 1]
        k = np.empty(N, dtype=np.int64)
        order = np.argsort(rank_of, kind="stable")
        for child in range(spec.m[level - 1]):
            idx = order[a[order] == child]
            k[idx] = np.arange(len(idx)) % p_l
        return k[None, :]

    def host_choice(dest: np.ndarray) -> np.ndarray:
        n_up = spec.up_ports_at(0)
        if n_up == 1:
            return np.zeros(N, dtype=np.int64)
        return (rank_of % n_up).astype(np.int64)

    return build_pgft_tables(fabric, up_choice, down_parallel, host_choice)


class FTreeRouter:
    """Callable wrapper (``shuffle`` emulates discovery-order SMs)."""

    def __init__(self, shuffle: bool = False, seed: int = 0):
        self.shuffle = shuffle
        self.seed = seed
        self.name = "ftree-shuffled" if shuffle else "ftree"

    def __call__(self, fabric: Fabric) -> ForwardingTables:
        return route_ftree(fabric, self.shuffle, self.seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FTreeRouter(shuffle={self.shuffle}, seed={self.seed})"
