"""Ablations: what each ingredient of the recipe buys.

The paper's conclusion credits "the combination of the two worlds":
routing *and* collective/order design.  Three sweeps quantify that:

1. **2x2 grid** -- {D-Mod-K, random routing} x {topology order, random
   order} for Shift traffic: only the (D-Mod-K, ordered) cell is
   congestion-free.
2. **Router comparison** -- D-Mod-K vs min-hop (round-robin, random,
   first-fit) vs counting-ftree vs random up-port routing, all with the
   topology order.
3. **Bidirectional design** -- naive recursive doubling vs the
   section-VI hierarchical sequence on a non-power-of-two-arity tree,
   and the proxy (pre/post) variant on non-power-of-two job sizes.
4. **Tree depth** -- round-robin heuristics coincide with D-Mod-K on
   2-level fabrics but congest on 3 levels, where the closed form's
   ``floor(j / W_l)`` grouping is essential.
"""

from __future__ import annotations

from ..analysis import render_table, sequence_hsd
from ..collectives import (
    hierarchical_recursive_doubling,
    recursive_doubling,
)
from ..fabric import build_fabric
from ..ordering import random_order, topology_order
from ..routing import route_dmodk, route_ftree, route_minhop, route_random
from ..topology import rlft_max
from .common import (
    add_runtime_args,
    get_topology,
    make_parser,
    make_sweeper,
    precheck,
    runtime_summary,
    sampled_shift,
)

__all__ = ["run", "main"]

ROUTER_COMPARISON = (
    "dmodk",
    "minhop-roundrobin",
    "minhop-random",
    "minhop-first",
    "ftree-counting",
    "ftree-shuffled",
    "random-router",
)


def _build_router(fab, name: str, seed: int):
    """Route ``fab`` with the named engine (module-level so the router
    comparison can fan out over worker processes)."""
    builders = {
        "dmodk": lambda: route_dmodk(fab),
        "minhop-roundrobin": lambda: route_minhop(fab, "roundrobin"),
        "minhop-random": lambda: route_minhop(fab, "random", seed=seed),
        "minhop-first": lambda: route_minhop(fab, "first"),
        "ftree-counting": lambda: route_ftree(fab),
        "ftree-shuffled": lambda: route_ftree(fab, shuffle=True, seed=seed),
        "random-router": lambda: route_random(fab, seed=seed),
    }
    return builders[name]()


def _router_cell(fab, r_name, cps, order, seed):
    """One router-comparison row: build tables, evaluate the sequence."""
    tables = _build_router(fab, r_name, seed)
    rep = sequence_hsd(tables, cps, order)
    return (r_name, round(rep.avg_max, 3), rep.worst)


def run(topo: str = "n324", seed: int = 0, max_shift_stages: int = 32,
        jobs: int | None = 1, use_cache: bool = False, cache_dir=None,
        check: bool = False, shard_timeout: float | None = None) -> str:
    sweeper = make_sweeper(jobs=jobs, use_cache=use_cache, cache_dir=cache_dir,
                           shard_timeout=shard_timeout)
    spec = get_topology(topo)
    fab = build_fabric(spec)
    if check:
        precheck(route_dmodk(fab), routing_name="dmodk", label=topo)
    n = spec.num_endports
    cps = sampled_shift(n, max_shift_stages)
    orders = {
        "ordered": topology_order(n),
        "random": random_order(n, seed=seed),
    }

    sections = []

    # 1. routing x ordering grid
    grid_rows = []
    for r_name, tables in (
        ("dmodk", route_dmodk(fab)),
        ("random-router", route_random(fab, seed=seed)),
    ):
        for o_name, order in orders.items():
            rep = sequence_hsd(tables, cps, order)
            grid_rows.append((r_name, o_name, round(rep.avg_max, 3),
                              rep.worst, rep.congestion_free))
    sections.append(render_table(
        ["routing", "order", "avg max HSD", "worst", "congestion-free"],
        grid_rows,
        title=f"Ablation 1 | routing x ordering for Shift on {spec}"))

    # 2. router comparison under the topology order (one routing run +
    # sequence evaluation per engine -- fanned out over --jobs workers)
    router_rows = sweeper.starmap(
        _router_cell,
        [(fab, r_name, cps, orders["ordered"], seed)
         for r_name in ROUTER_COMPARISON],
    )
    sections.append(render_table(
        ["routing engine", "avg max HSD", "worst"],
        router_rows,
        title="Ablation 2 | routing engines under the topology-aware order"))

    # 3. bidirectional sequence design
    tables = route_dmodk(fab)
    bid_rows = []
    for name, cps_b in (
        ("recdbl-naive", recursive_doubling(n)),
        ("recdbl-proxy", recursive_doubling(n, nonpow2="proxy")),
        ("recdbl-hierarchical", hierarchical_recursive_doubling(spec)),
    ):
        rep = sequence_hsd(tables, cps_b, orders["ordered"])
        bid_rows.append((name, len(cps_b.stages), round(rep.avg_max, 3),
                         rep.worst, rep.congestion_free))
    sections.append(render_table(
        ["bidirectional CPS", "stages", "avg max HSD", "worst",
         "congestion-free"],
        bid_rows,
        title="Ablation 3 | recursive-doubling designs (D-Mod-K, ordered)"))

    # 4. tree depth: heuristics vs the closed form
    depth_rows = []
    for levels, spec_d in ((2, rlft_max(6, 2)), (3, rlft_max(3, 3))):
        fab_d = build_fabric(spec_d)
        n_d = spec_d.num_endports
        cps_d = sampled_shift(n_d, max_shift_stages)
        order_d = topology_order(n_d)
        for r_name, tables in (
            ("dmodk", route_dmodk(fab_d)),
            ("minhop-roundrobin", route_minhop(fab_d, "roundrobin")),
            ("ftree-counting", route_ftree(fab_d)),
        ):
            rep = sequence_hsd(tables, cps_d, order_d)
            depth_rows.append((f"{levels}-level", str(spec_d), r_name,
                               round(rep.avg_max, 3), rep.worst))
    sections.append(render_table(
        ["depth", "topology", "routing", "avg max HSD", "worst"],
        depth_rows,
        title=("Ablation 4 | round-robin heuristics match D-Mod-K at 2"
               " levels, congest at 3 (the floor(j/W) grouping)")))

    sections.append(runtime_summary(sweeper))
    return "\n\n".join(sections)


def main(argv=None) -> None:
    parser = add_runtime_args(make_parser(__doc__))
    parser.add_argument("--topo", default="n324")
    parser.add_argument("--max-shift-stages", type=int, default=32)
    args = parser.parse_args(argv)
    print(run(topo=args.topo, seed=args.seed,
              max_shift_stages=args.max_shift_stages,
              jobs=args.jobs, use_cache=not args.no_cache,
              cache_dir=args.cache_dir, check=args.check,
              shard_timeout=args.shard_timeout))


if __name__ == "__main__":
    main()
