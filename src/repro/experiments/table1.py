"""Table 1: MPI collective algorithms and the CPS they use.

Regenerates the usage matrix (rows = permutation sequences, columns =
collective algorithms, cells = library/message-size marks) and verifies
the paper's headline count: the surveyed algorithms use exactly 8
distinct permutation sequences, every one of which this library
implements.
"""

from __future__ import annotations

from ..collectives import CPS_NAMES, TABLE1, distinct_cps
from ..collectives.usage import render_matrix
from .common import make_parser

__all__ = ["run", "main"]


def run() -> str:
    lines = [
        "Table 1 | CPS usage by MVAPICH (m/M) and OpenMPI (o/O) collective",
        "algorithms; capital = large messages, '2' = power-of-two only.",
        "",
        render_matrix(),
        "",
        f"distinct permutation sequences : {len(distinct_cps())} (paper: 8)",
        f"algorithm entries surveyed     : {len(TABLE1)}",
        f"all CPS implemented            : "
        f"{distinct_cps() <= set(CPS_NAMES)}",
    ]
    return "\n".join(lines)


def main(argv=None) -> None:
    make_parser(__doc__).parse_args(argv)
    print(run())


if __name__ == "__main__":
    main()
