"""Fault tolerance: contention under link failures (extension).

The paper assumes a healthy fabric; operators do not get that luxury.
This experiment kills random switch-to-switch cables, repairs the
D-Mod-K tables minimally (dead or non-minimal entries re-pointed onto
shortest live paths), and measures how far the congestion-freedom
guarantee erodes: each failed cable costs a local HSD bump where the
detoured traffic shares surviving links, while the rest of the fabric
keeps HSD = 1.
"""

from __future__ import annotations

import numpy as np

from ..analysis import render_table, sequence_hsd
from ..fabric import build_fabric
from ..ordering import topology_order
from ..routing import route_dmodk
from ..routing.repair import repair_tables
from .common import get_topology, make_parser, sampled_shift

__all__ = ["run", "main"]


def run(topo: str = "rlft2-max36", failures=(0, 1, 2, 4, 8, 16),
        max_shift_stages: int = 24, seed: int = 0,
        mode: str = "cable") -> str:
    if mode not in ("cable", "switch"):
        raise SystemExit(f"unknown failure mode {mode!r} (cable|switch)")
    spec = get_topology(topo)
    fab = build_fabric(spec)
    base = route_dmodk(fab)
    n = spec.num_endports
    cps = sampled_shift(n, max_shift_stages)
    order = topology_order(n)
    rng = np.random.default_rng(seed)
    if mode == "cable":
        pool = np.flatnonzero(fab.port_goes_up() & (fab.port_owner >= n))
        unit, scope = "up-links", f"{len(pool)} switch up-links"
    else:
        # Whole-switch deaths: top-level (spine) switches only stay
        # repairable; leaf deaths disconnect hosts, which the table
        # reports as such.
        pool = np.arange(n, fab.num_nodes)
        unit, scope = "switches", f"{len(pool)} switches"

    rows = []
    for nfail in failures:
        if nfail == 0:
            rep = sequence_hsd(base, cps, order)
            rows.append((0, 0, rep.worst, round(rep.avg_max, 3), "-"))
            continue
        dead = rng.choice(pool, size=nfail, replace=False)
        degraded = (fab.with_failed_cables(dead) if mode == "cable"
                    else fab.with_failed_switches(dead))
        repair = repair_tables(base, degraded)
        if not repair.ok:
            rows.append((nfail, repair.repaired_entries, "-", "-",
                         f"{len(repair.unreachable)} hosts lost"))
            continue
        rep = sequence_hsd(repair.tables, cps, order)
        rows.append((nfail, repair.repaired_entries, rep.worst,
                     round(rep.avg_max, 3), "ok"))
    return render_table(
        [f"failed {unit}", "entries repaired", "worst HSD", "avg max HSD",
         "status"],
        rows,
        title=(f"{mode.capitalize()} failures on {spec} ({scope})\n"
               "(extension: minimal repair keeps degradation local --"
               " HSD grows with the failure count, not with fabric size)"),
    )


def main(argv=None) -> None:
    parser = make_parser(__doc__)
    parser.add_argument("--topo", default="rlft2-max36")
    parser.add_argument("--failures", type=int, nargs="+",
                        default=[0, 1, 2, 4, 8, 16])
    parser.add_argument("--max-shift-stages", type=int, default=24)
    parser.add_argument("--mode", choices=("cable", "switch"),
                        default="cable",
                        help="what dies: individual cables or whole"
                             " switches")
    args = parser.parse_args(argv)
    print(run(topo=args.topo, failures=tuple(args.failures),
              max_shift_stages=args.max_shift_stages, seed=args.seed,
              mode=args.mode))


if __name__ == "__main__":
    main()
