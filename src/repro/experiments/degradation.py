"""Degradation curve: routing quality vs. fault count, healed vs. naive.

PR 5's ``failures`` experiment showed minimal repair keeps the HSD
penalty local; this one asks the sharper question the fault-space
analyzer (``repro.check.faultspace``) certifies statically: *which*
repair should the subnet manager push?  For each failure count ``k``
it kills ``k`` random switch-to-switch cables, repairs the D-Mod-K
tables with the ``naive`` round-robin and the quality-aware
``balanced`` strategy, and compares three curves:

* **worst-link load** -- the maximum per-link destination multiplicity
  (static all-to-all accounting; healthy D-Mod-K is the floor);
* **worst HSD** -- highest stage link load of a sampled Shift sequence
  on the repaired tables (dynamic counterpart of the same quantity);
* **certified-contention-free fraction** -- how many degraded fabrics
  the symbolic delta engine still certifies for the job's schedule.

Run on the paper's n324 with a Cont.-X job (``--exclude 36``) so the
fabric has idle capacity worth protecting: the balanced repair keeps
the worst link strictly lighter than naive from the very first
failure counts -- exactly the gap Gliksberg et al. report for
Dmodk-style fault-local rebalancing.
"""

from __future__ import annotations

import numpy as np

from ..analysis import multi_table_sequence_hsd, render_table, sequence_hsd
from ..check.faultspace import (
    certify_prepared,
    enumerate_fault_units,
    prepare_fault_cases,
)
from ..check.symbolic import SymbolicCertifier
from ..fabric import build_fabric
from ..ordering import topology_subset
from ..routing import route_dmodk
from ..routing.repair import REPAIR_STRATEGIES
from .common import DEFAULT_SEED, get_topology, make_parser, sampled_shift

__all__ = ["run", "main"]


def _combos(units, rng: np.random.Generator, k: int, samples: int):
    """``samples`` distinct k-subsets of fault units (all of them when
    the space is smaller than asked)."""
    out, seen = [], set()
    limit = samples * 20
    for _ in range(limit):
        idx = tuple(sorted(rng.choice(len(units), size=k, replace=False)
                           .tolist()))
        if idx in seen:
            continue
        seen.add(idx)
        out.append([units[i] for i in idx])
        if len(out) == samples:
            break
    return out


def _worst_hsds(tables_list, cps, placement, batch: bool,
                batch_size: int, batch_check: int) -> list[int]:
    """Per-case worst HSD over ``tables_list``.

    The batched path stacks ``batch_size`` cases' forwarding tables at
    a time through :func:`multi_table_sequence_hsd` (one walk for the
    whole chunk) and cross-checks a sampled subset against the serial
    :func:`sequence_hsd` path.
    """
    if not batch:
        return [sequence_hsd(t, cps, placement).worst for t in tables_list]
    worst: list[int] = []
    for c0 in range(0, len(tables_list), max(1, batch_size)):
        chunk = tables_list[c0:c0 + max(1, batch_size)]
        worst.extend(int(w) for w in
                     multi_table_sequence_hsd(chunk, cps, placement).worst)
    if batch_check and tables_list:
        stride = max(1, len(tables_list) // batch_check)
        for c in list(range(0, len(tables_list), stride))[:batch_check]:
            ref = sequence_hsd(tables_list[c], cps, placement).worst
            if ref != worst[c]:
                raise RuntimeError(
                    f"batched degradation mismatch at case {c}: "
                    f"stacked walk {worst[c]} != serial {ref}")
    return worst


def run(topo: str = "n324", failures=(1, 2, 4, 8, 16), samples: int = 12,
        seed: int = DEFAULT_SEED, exclude: int = 36,
        max_shift_stages: int = 24, batch: bool = False,
        batch_size: int = 256, batch_check: int = 4) -> str:
    spec = get_topology(topo)
    fab = build_fabric(spec)
    n = spec.num_endports
    active = topology_subset(n, exclude, seed=seed) if exclude else None
    tables = route_dmodk(fab, active=active)
    ranks = n - exclude
    cps = sampled_shift(ranks, max_shift_stages)
    placement = np.sort(np.asarray(active, dtype=np.int64)) \
        if active is not None else np.arange(n, dtype=np.int64)

    # Two pools, two questions.  Switch-to-switch cables shift load
    # between survivors -- the quality battleground the load/HSD curves
    # sample.  The certified curve draws from *every* cable: a dead
    # idle-host cable costs the job nothing and is the only single
    # fault the dense shift still certifies (a dead switch-to-switch
    # cable leaves 17 up-links for 18 destination groups -- pigeonhole
    # refutes every repair), so at k=1 the space is enumerated in full.
    sw_units = enumerate_fault_units(fab, units="cable",
                                     include_host_cables=False)
    all_units = enumerate_fault_units(fab, units="cable",
                                      include_host_cables=True)
    rng = np.random.default_rng(seed)

    # One healthy symbolic certification, reused by every sweep below.
    _, healthy_state = SymbolicCertifier(spec, active).certify(
        cps, placement, keep_links=True)

    healthy = sequence_hsd(tables, cps, placement)
    rows = [(0, "-", "-", healthy.worst, "-", healthy.worst, "-", "-")]
    dominated = []
    for k in failures:
        load_combos = _combos(sw_units, rng, k, samples)
        cert_combos = [[u] for u in all_units] if k == 1 else \
            _combos(all_units, rng, k, samples)
        per = {}
        for strategy in REPAIR_STRATEGIES:
            prepared = prepare_fault_cases(tables, load_combos,
                                           strategy=strategy,
                                           active=active,
                                           check_valleys=False)
            mults = [p.worst_multiplicity for p in prepared]
            hsds = _worst_hsds(
                [p.repair.tables for p in prepared
                 if not (set(p.repair.unreachable)
                         & set(placement.tolist()))],
                cps, placement, batch, batch_size, batch_check)
            cert_prepared = prepare_fault_cases(tables, cert_combos,
                                                strategy=strategy,
                                                active=active,
                                                check_valleys=False)
            result = certify_prepared(tables, cert_prepared, cps,
                                      placement, active=active,
                                      engine="incremental",
                                      healthy_state=healthy_state)
            per[strategy] = {
                "mean_mult": float(np.mean(mults)),
                "max_mult": int(np.max(mults)),
                "worst_hsd": int(np.max(hsds)) if hsds else 0,
                "certified": result.certified_fraction,
            }
        nav, bal = per["naive"], per["balanced"]
        if bal["max_mult"] < nav["max_mult"]:
            dominated.append(k)
        rows.append((
            k,
            f"{nav['mean_mult']:.1f}/{nav['max_mult']}",
            f"{bal['mean_mult']:.1f}/{bal['max_mult']}",
            nav["worst_hsd"], bal["worst_hsd"],
            f"{nav['certified']:.2f}", f"{bal['certified']:.2f}",
            "balanced" if bal["max_mult"] < nav["max_mult"] else "tie",
        ))
    job = f"Cont.-{ranks} job ({exclude} idle end-ports)" if exclude \
        else "full population"
    note = (f"balanced strictly dominates naive on worst-link load at "
            f"k in {{{', '.join(str(k) for k in dominated)}}}"
            if dominated else
            "no strict dominance at the sampled failure counts")
    return render_table(
        ["failed cables", "naive load mean/max", "balanced load mean/max",
         "naive worst HSD", "balanced worst HSD", "naive certified",
         "balanced certified", "winner"],
        rows,
        title=(f"Degradation curve on {spec}, {job}, {samples} samples "
               f"per count, {len(cps.stages)}-stage shift\n"
               f"(load = per-link destination multiplicity; certified = "
               f"fraction of degraded fabrics the symbolic delta engine "
               f"still proves contention-free)\n{note}"),
    )


def main(argv=None) -> None:
    parser = make_parser(__doc__)
    parser.add_argument("--topo", default="n324")
    parser.add_argument("--failures", type=int, nargs="+",
                        default=[1, 2, 4, 8, 16])
    parser.add_argument("--samples", type=int, default=12,
                        help="random fault combos per failure count")
    parser.add_argument("--exclude", type=int, default=36,
                        help="idle end-ports (Cont.-X job awareness)")
    parser.add_argument("--max-shift-stages", type=int, default=24)
    parser.add_argument("--batch", action="store_true",
                        help="walk all repaired tables of a failure "
                             "count through one stacked table tensor")
    parser.add_argument("--batch-size", type=int, default=256,
                        help="repaired-table cases stacked per walk "
                             "(memory knob) in --batch mode")
    parser.add_argument("--batch-check", type=int, default=4,
                        help="batched worst-HSD values cross-checked "
                             "against the serial walk, per sweep")
    args = parser.parse_args(argv)
    print(run(topo=args.topo, failures=tuple(args.failures),
              samples=args.samples, seed=args.seed, exclude=args.exclude,
              max_shift_stages=args.max_shift_stages, batch=args.batch,
              batch_size=args.batch_size, batch_check=args.batch_check))


if __name__ == "__main__":
    main()
