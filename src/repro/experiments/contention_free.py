"""Section VII validation: full bandwidth and cut-through latency.

"Repeating the Shift and Recursive-Doubling permutation sequence
simulations ... while using MPI-node-order matching the routing
algorithm, provides the expected full bandwidth and cut-through
latency."  We reproduce this with *both* simulators:

* fluid: normalized bandwidth ~ the ideal (overhead-limited) value;
* packet: mean message latency ~ the zero-load cut-through latency.

The default fabric is small so the random-order rows (which exercise
the event-driven packet core) stay quick, but the check is no longer
capped there: ``--topo n324 --stages 8`` validates the claim at paper
scale -- the ordered rows ride the vectorized packet engine's analytic
fast path, so full-bandwidth/cut-through latency at 324 end-ports
takes seconds, not hours.  (``--stages`` windows the Shift sequence;
random-order rows at paper scale still pay event-driven prices.)
"""

from __future__ import annotations

from ..analysis import render_table
from ..collectives import hierarchical_recursive_doubling, shift
from ..fabric import build_fabric
from ..ordering import random_order, topology_order
from ..routing import route_dmodk
from ..sim import (
    FluidSimulator,
    PacketSimulator,
    cps_workload,
)
from .common import get_topology, make_parser

__all__ = ["run", "main"]


def run(topo: str = "n16-pgft", message_kb: int = 64, seed: int = 3,
        stages: int = 0) -> str:
    spec = get_topology(topo)
    tables = route_dmodk(build_fabric(spec))
    n = spec.num_endports
    size = message_kb * 1024.0
    cal = FluidSimulator(tables).cal
    zero_load = cal.zero_load_latency(int(size), hops=2 * spec.h - 1)
    if stages and stages < n - 1:
        shift_cps = shift(n, displacements=range(1, stages + 1))
    else:
        shift_cps = shift(n)

    rows = []
    for cps_name, cps in (
        ("shift", shift_cps),
        ("recdbl-hier", hierarchical_recursive_doubling(spec)),
    ):
        for order_name, order in (
            ("ordered", topology_order(n)),
            ("random", random_order(n, seed=seed)),
        ):
            wl = cps_workload(cps, order, n, size)
            fres = FluidSimulator(tables).run_sequences(wl)
            pres = PacketSimulator(
                tables, max_events=50_000_000
            ).run_sequences(wl)
            rows.append((
                cps_name, order_name,
                round(fres.normalized_bandwidth, 3),
                round(pres.normalized_bandwidth, 3),
                round(pres.mean_latency, 2),
                round(pres.max_latency, 2),
            ))
    return render_table(
        ["CPS", "order", "fluid normBW", "packet normBW",
         "mean latency [us]", "max latency [us]"],
        rows,
        title=(f"Contention-free validation on {spec} | {message_kb} KB "
               f"messages; zero-load cut-through latency = {zero_load:.2f} us\n"
               "(paper: ordered runs reach full bandwidth and cut-through"
               " latency)"),
    )


def main(argv=None) -> None:
    parser = make_parser(__doc__)
    parser.add_argument("--topo", default="n16-pgft")
    parser.add_argument("--message-kb", type=int, default=64)
    parser.add_argument("--stages", type=int, default=0,
                        help="Shift stage window (0 = all n-1 stages)")
    args = parser.parse_args(argv)
    print(run(topo=args.topo, message_kb=args.message_kb, seed=args.seed,
              stages=args.stages))


if __name__ == "__main__":
    main()
