"""Section VII validation: full bandwidth and cut-through latency.

"Repeating the Shift and Recursive-Doubling permutation sequence
simulations ... while using MPI-node-order matching the routing
algorithm, provides the expected full bandwidth and cut-through
latency."  We reproduce this on a small fabric with *both* simulators:

* fluid: normalized bandwidth ~ the ideal (overhead-limited) value;
* packet: mean message latency ~ the zero-load cut-through latency.
"""

from __future__ import annotations

from ..analysis import render_table
from ..collectives import hierarchical_recursive_doubling, shift
from ..fabric import build_fabric
from ..ordering import random_order, topology_order
from ..routing import route_dmodk
from ..sim import (
    FluidSimulator,
    PacketSimulator,
    cps_workload,
)
from .common import get_topology, make_parser

__all__ = ["run", "main"]


def run(topo: str = "n16-pgft", message_kb: int = 64, seed: int = 3) -> str:
    spec = get_topology(topo)
    tables = route_dmodk(build_fabric(spec))
    n = spec.num_endports
    size = message_kb * 1024.0
    cal = FluidSimulator(tables).cal
    zero_load = cal.zero_load_latency(int(size), hops=2 * spec.h - 1)

    rows = []
    for cps_name, cps in (
        ("shift", shift(n)),
        ("recdbl-hier", hierarchical_recursive_doubling(spec)),
    ):
        for order_name, order in (
            ("ordered", topology_order(n)),
            ("random", random_order(n, seed=seed)),
        ):
            wl = cps_workload(cps, order, n, size)
            fres = FluidSimulator(tables).run_sequences(wl)
            pres = PacketSimulator(tables).run_sequences(wl)
            rows.append((
                cps_name, order_name,
                round(fres.normalized_bandwidth, 3),
                round(pres.normalized_bandwidth, 3),
                round(pres.mean_latency, 2),
                round(pres.max_latency, 2),
            ))
    return render_table(
        ["CPS", "order", "fluid normBW", "packet normBW",
         "mean latency [us]", "max latency [us]"],
        rows,
        title=(f"Contention-free validation on {spec} | {message_kb} KB "
               f"messages; zero-load cut-through latency = {zero_load:.2f} us\n"
               "(paper: ordered runs reach full bandwidth and cut-through"
               " latency)"),
    )


def main(argv=None) -> None:
    parser = make_parser(__doc__)
    parser.add_argument("--topo", default="n16-pgft")
    parser.add_argument("--message-kb", type=int, default=64)
    args = parser.parse_args(argv)
    print(run(topo=args.topo, message_kb=args.message_kb, seed=args.seed))


if __name__ == "__main__":
    main()
