"""Experiment drivers regenerating every table and figure of the paper.

See DESIGN.md's per-experiment index.  Each submodule has a ``run()``
returning the report text and a ``main()`` CLI; the ``repro-experiments``
console script (``repro.experiments.cli``) dispatches to them.  Modules
are imported lazily to keep ``python -m repro.experiments.<name>``
clean and fast.
"""

__all__ = ["EXPERIMENTS", "main"]


def __getattr__(name):
    if name in ("EXPERIMENTS", "main"):
        from . import cli

        return getattr(cli, {"EXPERIMENTS": "EXPERIMENTS", "main": "main"}[name])
    raise AttributeError(name)
