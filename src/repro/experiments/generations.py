"""Calibration sensitivity: does faster wire mask bad ordering?

The paper's numbers are tied to QDR-era ratios (wire 4000 MB/s vs host
3250 MB/s: a link shared by two flows throttles each below host speed).
Sweeping link generations shows when hot spots actually hurt: once the
wire is at least ``HSD_max`` times the host bandwidth, moderate
contention hides entirely behind the PCIe bottleneck -- and conversely,
host-bound fabrics (EDR-class wire with matching hosts) feel every
shared link.  Quantifies how portable the 40 %-degradation headline is
across hardware generations.
"""

from __future__ import annotations

from ..analysis import render_table
from ..collectives import shift
from ..fabric import build_fabric
from ..ordering import random_order, topology_order
from ..routing import route_dmodk
from ..sim import (
    DDR_PCIE_GEN1,
    EDR_PCIE_GEN3,
    QDR_PCIE_GEN2,
    FluidSimulator,
    LinkCalibration,
    cps_workload,
)
from .common import get_topology, make_parser

__all__ = ["run", "main"]

#: A hypothetical fabric whose wire is 3x the host bandwidth -- enough
#: head-room to hide HSD <= 3 entirely.
OVERPROVISIONED = LinkCalibration(
    name="overprovisioned-3x", link_bandwidth=9750.0, host_bandwidth=3250.0
)

GENERATIONS = (DDR_PCIE_GEN1, QDR_PCIE_GEN2, EDR_PCIE_GEN3, OVERPROVISIONED)


def run(topo: str = "n16-pgft", message_kb: int = 256, seed: int = 1,
        shift_stages: int = 15) -> str:
    spec = get_topology(topo)
    tables = route_dmodk(build_fabric(spec))
    n = spec.num_endports
    cps = shift(n, displacements=range(1, min(shift_stages, n - 1) + 1))
    size = message_kb * 1024.0

    rows = []
    for cal in GENERATIONS:
        res = {}
        for label, order in (("ordered", topology_order(n)),
                             ("random", random_order(n, seed=seed))):
            wl = cps_workload(cps, order, n, size)
            sim = FluidSimulator(tables, calibration=cal)
            res[label] = sim.run_sequences(wl).normalized_bandwidth
        headroom = cal.link_bandwidth / cal.host_bandwidth
        rows.append((
            cal.name, round(headroom, 2),
            round(res["ordered"], 3), round(res["random"], 3),
            round(res["random"] / res["ordered"], 3),
        ))
    return render_table(
        ["generation", "wire/host ratio", "ordered normBW", "random normBW",
         "random/ordered"],
        rows,
        title=(f"Link-generation sensitivity on {spec} | {message_kb} KB"
               " Shift messages\n"
               "(extension: contention only hurts while the wire/host"
               " ratio is below the hot-spot degree)"),
    )


def main(argv=None) -> None:
    parser = make_parser(__doc__)
    parser.add_argument("--topo", default="n16-pgft")
    parser.add_argument("--message-kb", type=int, default=256)
    parser.add_argument("--shift-stages", type=int, default=15)
    args = parser.parse_args(argv)
    print(run(topo=args.topo, message_kb=args.message_kb, seed=args.seed,
              shift_stages=args.shift_stages))


if __name__ == "__main__":
    main()
