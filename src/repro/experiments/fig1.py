"""Figure 1: node order causes or prevents blocking (16-node PGFT).

The pattern is ``destination = (source + 4) mod 16`` on the 2-level
16-node fabric of Fig. 4(b).  With the routing-aware node order every
link carries one flow; a random order puts pairs of flows on several
up links ("3 hot-spots" in the paper's example).  The report prints the
per-up-link flow counts for both orders.
"""

from __future__ import annotations

import numpy as np

from ..analysis import fixed_shift_pattern, render_table, stage_link_loads
from ..fabric import build_fabric
from ..ordering import random_order
from ..routing import route_dmodk
from .common import get_topology, make_parser

__all__ = ["run", "main"]


def _uplink_loads(tables, src, dst):
    fab = tables.fabric
    loads = stage_link_loads(tables, src, dst)
    up = fab.port_goes_up() & (fab.port_owner >= fab.num_endports)
    return loads[up]


def run(displacement: int = 4, seed: int = 1, num_random_orders: int = 5) -> str:
    spec = get_topology("n16-pgft")
    tables = route_dmodk(build_fabric(spec))
    n = spec.num_endports

    rows = []
    src, dst = fixed_shift_pattern(n, displacement)
    loads = _uplink_loads(tables, src, dst)
    rows.append(("routing-aware", int(loads.max()),
                 int((loads >= 2).sum()), "congestion-free"))

    worst_hot = 0
    for t in range(num_random_orders):
        order = random_order(n, seed=seed + t)
        src, dst = fixed_shift_pattern(n, displacement, placement=order)
        loads = _uplink_loads(tables, src, dst)
        hot = int((loads >= 2).sum())
        worst_hot = max(worst_hot, hot)
        rows.append((f"random #{t}", int(loads.max()), hot,
                     "blocking" if hot else "lucky"))

    table = render_table(
        ["MPI node order", "max flows/up-link", "hot up-links", "verdict"],
        rows,
        title=(f"Figure 1 | dst = (src + {displacement}) mod {n} on {spec}\n"
               f"(paper: random order shows 3 hot links; ordered is clean)"),
    )
    return table


def main(argv=None) -> None:
    parser = make_parser(__doc__)
    parser.add_argument("--displacement", type=int, default=4)
    parser.add_argument("--orders", type=int, default=5)
    args = parser.parse_args(argv)
    print(run(displacement=args.displacement, seed=args.seed,
              num_random_orders=args.orders))


if __name__ == "__main__":
    main()
