"""Chaos campaigns: seeded fault storms against the MPI collectives.

Each scenario draws a random :class:`~repro.faults.FaultSchedule`
(cable cuts, switch deaths, flaky windows -- density set by ``--mtbf``)
and runs a data-bearing collective through the fault-honoring packet
engine with at-least-once retransmission and the self-healing
controller enabled.  Every scenario must end in exactly one of two
states: the collective completes and its *data* matches the collective
semantics bit-for-bit, or it raises
:class:`~repro.mpi.DeliveryError` naming the lost messages.  Anything
else -- a "completed" collective with wrong data -- is silent loss and
aborts the campaign.  The report is a degradation envelope: delivered
fraction, retransmissions, repairs and slowdown versus the fault-free
baseline, per MTBF level.

``--batch`` switches the campaign to the tensorized fast path: the
collective's stage schedule is priced *once* through
:func:`repro.sim.run_batch` (analytic occupancy intervals included),
and each scenario is then screened against its fault schedule with
pure interval algebra -- a scenario provably untouched by every fault
window gets its exact metrics tuple without simulating anything.
Only scenarios a fault could actually perturb fall back to the full
per-scenario engine (still sharded across ``--jobs``), and a sampled
subset of fast verdicts is cross-checked against the unbatched path
on every run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import render_table
from ..fabric import build_fabric
from ..faults import FaultSchedule
from ..mpi import Communicator, DeliveryError, RetryPolicy
from ..routing import route_dmodk
from ..sim.packet_vector import CONFLICT_MARGIN
from .common import (
    DEFAULT_SEED,
    add_runtime_args,
    get_topology,
    make_parser,
    make_sweeper,
    runtime_summary,
)

__all__ = ["run", "main", "run_scenario", "COLLECTIVES"]

COLLECTIVES = ("allreduce", "allgather", "broadcast", "alltoall")


def _scenario_data(collective: str, n: int, words: int) -> list[np.ndarray]:
    """Integer-valued float payloads so semantic checks are exact."""
    if collective == "alltoall":
        return [np.arange(n, dtype=np.float64) + i * n for i in range(n)]
    return [np.arange(words, dtype=np.float64) + i for i in range(n)]


def _semantics_ok(collective: str, n: int, words: int,
                  data: list[np.ndarray], values) -> bool:
    """Cross-check delivered data against the collective's definition."""
    if collective == "allreduce":
        expect = np.sum(np.stack(data), axis=0)
        return all(np.array_equal(v, expect) for v in values)
    if collective == "allgather":
        expect = np.concatenate(data)
        return all(np.array_equal(v, expect) for v in values)
    if collective == "broadcast":
        return all(np.array_equal(v, data[0]) for v in values)
    if collective == "alltoall":
        # values[i][j] must be data[j][i] (the displacement exchange).
        return all(
            np.array_equal(values[i], np.asarray(
                [data[j][i] for j in range(n)]))
            for i in range(n)
        )
    raise ValueError(f"unknown collective {collective!r}")


def run_scenario(
    topo: str,
    scenario_seed: int,
    collective: str,
    mtbf: float,
    horizon: float,
    sweep_delay: float,
    words: int,
    max_retries: int,
) -> tuple[float, ...]:
    """One chaos scenario (module-level: picklable for worker pools).

    Returns the flat metrics vector
    ``(completed, semantic_ok, delivered_fraction, retransmissions,
    dropped_packets, repairs, recovery_latency, time_us, lost)``.
    """
    spec = get_topology(topo)
    fab = build_fabric(spec)
    tables = route_dmodk(fab)
    n = fab.num_endports
    sched = FaultSchedule.random(
        fab, seed=scenario_seed, horizon=horizon, mtbf=mtbf)
    comm = Communicator(
        tables,
        faults=sched,
        retry=RetryPolicy(max_retries=max_retries, seed=scenario_seed),
        sweep_delay=sweep_delay,
    )
    data = _scenario_data(collective, n, words)
    try:
        res = getattr(comm, collective)(data)
    except DeliveryError as err:
        m = err.metrics
        return (0.0, 1.0, m.delivered_fraction, float(m.retransmissions),
                float(m.dropped_packets), float(len(m.repairs)),
                m.recovery_latency, m.time_us, float(len(err.lost)))
    m = comm.last_faults
    ok = _semantics_ok(collective, n, words, data, res.values)
    return (1.0, float(ok), m.delivered_fraction, float(m.retransmissions),
            float(m.dropped_packets), float(len(m.repairs)),
            m.recovery_latency, m.time_us, 0.0)


def _baseline_time(topo: str, collective: str, words: int) -> float:
    """Fault-free packet-priced time of the same collective (the
    denominator of the slowdown column -- same engine, empty schedule)."""
    spec = get_topology(topo)
    fab = build_fabric(spec)
    tables = route_dmodk(fab)
    comm = Communicator(tables, faults=FaultSchedule())
    data = _scenario_data(collective, fab.num_endports, words)
    return getattr(comm, collective)(data).time_us


@dataclass
class _ChaosPlan:
    """Analytic replay of one (topo, collective, words) scenario family.

    Everything here is fault-independent: the stage ledger, the exact
    per-stage makespans and link-occupancy intervals of the fault-free
    run (offset to the global clock), and the fault-free semantic
    verdict.  A scenario whose schedule provably never touches this
    plan gets its metrics from the plan alone.
    """

    fab: object
    sem_ok: bool
    total_messages: int
    final_clock: float
    windows: list[tuple[float, float]]      # non-empty stage run windows
    links: np.ndarray                        # concatenated occupancy ...
    enter: np.ndarray                        # ... in global time
    exit: np.ndarray
    used: frozenset                          # every gport any stage crosses


def _batched_plan(topo: str, collective: str,
                  words: int) -> "_ChaosPlan | None":
    """Build the shared analytic plan, or ``None`` when even the
    fault-free stages need the event core (conflicts) -- then every
    scenario takes the per-scenario path."""
    from ..sim import BatchSpec, ScenarioSpec, run_batch

    spec = get_topology(topo)
    fab = build_fabric(spec)
    tables = route_dmodk(fab)
    n = fab.num_endports
    data = _scenario_data(collective, n, words)
    comm = Communicator(tables)
    res = getattr(comm, collective)(data)
    sem_ok = _semantics_ok(collective, n, words, data, res.values)
    assert comm.last_stages is not None

    # Fold each stage exactly the way Communicator._price_faulty does.
    stage_pending: list[dict[int, tuple[int, float]]] = []
    for stage in comm.last_stages:
        pending: dict[int, tuple[int, float]] = {}
        for src, dst, nbytes in stage:
            if src == dst or nbytes <= 0:
                continue
            if src in pending:
                prev = pending[src]
                pending[src] = (prev[0], prev[1] + nbytes)
            else:
                pending[src] = (dst, nbytes)
        stage_pending.append(pending)
    total = sum(len(p) for p in stage_pending)

    # Price every non-empty stage once through the batch engine; its
    # fast path is bit-identical to the reference engine the faulty
    # pricer runs, and it exposes the occupancy intervals the screen
    # needs.  The faulty pricer uses default (infinite) credits.
    elements = []
    for s_i, pending in enumerate(stage_pending):
        if not pending:
            continue
        seqs: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for src in sorted(pending):
            seqs[src].append(pending[src])
        elements.append(ScenarioSpec(sequences=seqs, label=f"stage{s_i}"))
    batch = run_batch(BatchSpec(tables=tables, elements=elements,
                                calibration=comm.cal))
    if any(e.status != "fast" for e in batch.elements):
        return None

    clock = 0.0
    windows: list[tuple[float, float]] = []
    occ_l: list[np.ndarray] = []
    occ_e: list[np.ndarray] = []
    occ_x: list[np.ndarray] = []
    stage_iter = iter(batch.elements)
    for pending in stage_pending:
        if not pending:
            clock += comm.cal.host_overhead  # empty (barrier) stage
            continue
        e = next(stage_iter)
        la, ea, xa = e.occupancy()
        occ_l.append(la)
        occ_e.append(ea + clock)
        occ_x.append(xa + clock)
        end = max(clock, clock + e.makespan)
        windows.append((clock, end))
        clock = end
    links = np.concatenate(occ_l) if occ_l else np.zeros(0, dtype=np.int64)
    enter = np.concatenate(occ_e) if occ_e else np.zeros(0)
    exit_ = np.concatenate(occ_x) if occ_x else np.zeros(0)
    return _ChaosPlan(
        fab=fab, sem_ok=sem_ok, total_messages=total, final_clock=clock,
        windows=windows, links=links, enter=enter, exit=exit_,
        used=frozenset(np.unique(links).tolist()))


def _screen_scenario(plan: _ChaosPlan, sched: FaultSchedule,
                     sweep_delay: float) -> "tuple[float, ...] | None":
    """The exact :func:`run_scenario` tuple when the schedule provably
    cannot perturb the plan, else ``None`` (run the real engine).

    Three demotion triggers, each conservative:

    * a dead window on a cable any stage crosses, opening before the
      run ends -- even a non-overlapping one re-points forwarding
      entries at repair time (and a mid-flight one drops packets);
    * any fault window (dead or flaky) intersecting any occupancy
      interval -- the engine's own exactness criterion;
    * a repair sweep landing inside a stage's run window -- mid-run
      table swaps re-resolve parked senders.

    A surviving scenario delivers everything on the fault-free
    timeline: repairs and recovery latency follow from schedule
    algebra alone (one sweep per distinct topology-event time).
    """
    margin = CONFLICT_MARGIN
    fab = plan.fab
    sweeps: dict[float, float] = {}
    for ev in sched.topology_events():
        sweeps.setdefault(ev.time + sweep_delay, ev.time)
    for a, b, start, _end in sched.down_intervals(fab):
        if (a in plan.used or b in plan.used) \
                and start < plan.final_clock + margin:
            return None
    if sched.overlaps_occupancy(fab, plan.links, plan.enter, plan.exit,
                                margin=margin):
        return None
    for sweep_time in sweeps:
        if sweep_time > plan.final_clock + margin:
            continue
        for w0, w1 in plan.windows:
            if w0 - margin < sweep_time < w1 + margin:
                return None
    repairs = [(st, ft) for st, ft in sweeps.items()
               if st <= plan.final_clock]
    recovery = max((st - ft for st, ft in repairs), default=0.0)
    return (1.0, float(plan.sem_ok), 1.0, 0.0, 0.0, float(len(repairs)),
            recovery, plan.final_clock, 0.0)


def _run_level_batched(plan: _ChaosPlan, argslist, sweeper,
                       batch_size: int, batch_check: int):
    """One MTBF level on the analytic fast path.

    Screens every scenario against the plan, cross-checks a sampled
    subset of fast verdicts against :func:`run_scenario` (exact tuple
    equality), and shards only the demoted scenarios across the
    sweeper's worker pool, ``batch_size`` at a time.  Returns the raw
    metrics list plus the number of screened-fast scenarios.
    """
    raw: list = [None] * len(argslist)
    demoted: list[int] = []
    for i, args in enumerate(argslist):
        topo, scenario_seed, _c, level, horizon, sweep_delay = args[:6]
        sched = FaultSchedule.random(plan.fab, seed=scenario_seed,
                                     horizon=horizon, mtbf=level)
        fast = _screen_scenario(plan, sched, sweep_delay)
        if fast is None:
            demoted.append(i)
        else:
            raw[i] = fast
    fast_idx = [i for i in range(len(argslist)) if raw[i] is not None]
    if batch_check and fast_idx:
        stride = max(1, len(fast_idx) // batch_check)
        for i in fast_idx[::stride][:batch_check]:
            ref = run_scenario(*argslist[i])
            if tuple(ref) != tuple(raw[i]):
                raise RuntimeError(
                    f"batched chaos mismatch at seed {argslist[i][1]}: "
                    f"screened {raw[i]} != per-scenario {ref}")
    for c0 in range(0, len(demoted), max(1, batch_size)):
        chunk = demoted[c0:c0 + max(1, batch_size)]
        results = sweeper.starmap(run_scenario,
                                  [argslist[i] for i in chunk])
        for i, r in zip(chunk, results):
            raw[i] = r
    return raw, len(fast_idx)


def run(topo: str = "n16-pgft", campaign: int = 50, seed: int = DEFAULT_SEED,
        mtbf=(500.0, 100.0, 25.0), collective: str = "allreduce",
        horizon: float = 300.0, sweep_delay: float = 50.0,
        words: int = 256, max_retries: int = 8, sweeper=None,
        batch: bool = False, batch_size: int = 4096,
        batch_check: int = 8) -> str:
    if collective not in COLLECTIVES:
        raise SystemExit(
            f"unknown collective {collective!r}; pick one of "
            f"{', '.join(COLLECTIVES)}")
    if sweeper is None:
        sweeper = make_sweeper()
    base_us = _baseline_time(topo, collective, words)
    plan = _batched_plan(topo, collective, words) if batch else None
    screened = 0

    rows = []
    for level in mtbf:
        argslist = [
            (topo, seed + i, collective, float(level), horizon,
             sweep_delay, words, max_retries)
            for i in range(campaign)
        ]
        if plan is not None:
            raw, n_fast = _run_level_batched(plan, argslist, sweeper,
                                             batch_size, batch_check)
            screened += n_fast
        else:
            raw = sweeper.starmap(run_scenario, argslist)
        out = np.asarray([r for r in raw if r is not None])
        if not out.size:
            raise RuntimeError(
                f"chaos campaign mtbf={level}: every scenario worker "
                f"failed ({len(sweeper.last_failures)} failures)")
        completed, sem_ok, df = out[:, 0], out[:, 1], out[:, 2]
        retrans, repairs = out[:, 3], out[:, 5]
        recovery, time_us, lost = out[:, 6], out[:, 7], out[:, 8]
        silent = np.flatnonzero((completed > 0) & (sem_ok == 0))
        if silent.size:
            bad = [seed + int(i) for i in silent]
            raise RuntimeError(
                f"SILENT DATA LOSS: scenario seed(s) {bad} completed "
                f"{collective} with wrong data (mtbf={level})")
        done = completed > 0
        rows.append((
            f"{level:g}",
            len(out),
            int(done.sum()),
            int((~done).sum()),
            round(float(df.min()), 3),
            round(float(df.mean()), 3),
            round(float(retrans.mean()), 1),
            round(float(repairs.mean()), 1),
            round(float(np.percentile(recovery, 95)), 1),
            round(float(time_us[done].mean() / base_us), 2)
            if done.any() else "-",
            int(lost.sum()),
        ))

    table = render_table(
        ["mtbf (us)", "scenarios", "ok", "delivery-err", "min df",
         "mean df", "retrans", "repairs", "p95 recovery", "slowdown",
         "lost msgs"],
        rows,
        title=(f"Chaos campaign: {campaign} seeded scenarios x "
               f"{collective} on {topo} (horizon {horizon:g} us, "
               f"sweep delay {sweep_delay:g} us, "
               f"baseline {base_us:.1f} us)\n"
               "(every scenario either delivers semantically-correct "
               "data or raises DeliveryError -- no silent loss)"),
    )
    if batch:
        mode = (f"batched: {screened}/{campaign * len(mtbf)} scenarios "
                f"resolved analytically, {batch_check} cross-checked "
                f"per level" if plan is not None else
                "batched: plan unavailable (stage needs the event "
                "core); ran per-scenario")
        return f"{table}\n{mode}\n{runtime_summary(sweeper)}"
    return f"{table}\n{runtime_summary(sweeper)}"


def main(argv=None) -> None:
    parser = make_parser(__doc__)
    parser.add_argument("--topo", default="n16-pgft")
    parser.add_argument("--campaign", type=int, default=50, metavar="N",
                        help="scenarios per MTBF level (default: %(default)s)")
    parser.add_argument("--mtbf", type=float, nargs="+",
                        default=[500.0, 100.0, 25.0],
                        help="mean time between faults, us (one column set"
                             " per value)")
    parser.add_argument("--collective", default="allreduce",
                        choices=COLLECTIVES)
    parser.add_argument("--horizon", type=float, default=300.0,
                        help="fault schedule horizon, us")
    parser.add_argument("--sweep-delay", type=float, default=50.0,
                        help="SM sweep delay before repairs apply, us")
    parser.add_argument("--words", type=int, default=256,
                        help="float64 words per rank payload")
    parser.add_argument("--max-retries", type=int, default=8)
    parser.add_argument("--batch", action="store_true",
                        help="tensorized fast path: screen scenarios "
                             "against the batch-priced stage plan; only "
                             "perturbed ones simulate (per --jobs)")
    parser.add_argument("--batch-size", type=int, default=4096,
                        help="demoted scenarios dispatched per worker "
                             "round in --batch mode")
    parser.add_argument("--batch-check", type=int, default=8,
                        help="fast verdicts cross-checked against the "
                             "per-scenario engine, per MTBF level")
    add_runtime_args(parser)
    args = parser.parse_args(argv)
    sweeper = make_sweeper(args.jobs, use_cache=False,
                           shard_timeout=args.shard_timeout)
    print(run(topo=args.topo, campaign=args.campaign, seed=args.seed,
              mtbf=tuple(args.mtbf), collective=args.collective,
              horizon=args.horizon, sweep_delay=args.sweep_delay,
              words=args.words, max_retries=args.max_retries,
              sweeper=sweeper, batch=args.batch,
              batch_size=args.batch_size, batch_check=args.batch_check))


if __name__ == "__main__":
    main()
