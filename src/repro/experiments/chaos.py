"""Chaos campaigns: seeded fault storms against the MPI collectives.

Each scenario draws a random :class:`~repro.faults.FaultSchedule`
(cable cuts, switch deaths, flaky windows -- density set by ``--mtbf``)
and runs a data-bearing collective through the fault-honoring packet
engine with at-least-once retransmission and the self-healing
controller enabled.  Every scenario must end in exactly one of two
states: the collective completes and its *data* matches the collective
semantics bit-for-bit, or it raises
:class:`~repro.mpi.DeliveryError` naming the lost messages.  Anything
else -- a "completed" collective with wrong data -- is silent loss and
aborts the campaign.  The report is a degradation envelope: delivered
fraction, retransmissions, repairs and slowdown versus the fault-free
baseline, per MTBF level.
"""

from __future__ import annotations

import numpy as np

from ..analysis import render_table
from ..fabric import build_fabric
from ..faults import FaultSchedule
from ..mpi import Communicator, DeliveryError, RetryPolicy
from ..routing import route_dmodk
from .common import (
    DEFAULT_SEED,
    add_runtime_args,
    get_topology,
    make_parser,
    make_sweeper,
    runtime_summary,
)

__all__ = ["run", "main", "run_scenario", "COLLECTIVES"]

COLLECTIVES = ("allreduce", "allgather", "broadcast", "alltoall")


def _scenario_data(collective: str, n: int, words: int) -> list[np.ndarray]:
    """Integer-valued float payloads so semantic checks are exact."""
    if collective == "alltoall":
        return [np.arange(n, dtype=np.float64) + i * n for i in range(n)]
    return [np.arange(words, dtype=np.float64) + i for i in range(n)]


def _semantics_ok(collective: str, n: int, words: int,
                  data: list[np.ndarray], values) -> bool:
    """Cross-check delivered data against the collective's definition."""
    if collective == "allreduce":
        expect = np.sum(np.stack(data), axis=0)
        return all(np.array_equal(v, expect) for v in values)
    if collective == "allgather":
        expect = np.concatenate(data)
        return all(np.array_equal(v, expect) for v in values)
    if collective == "broadcast":
        return all(np.array_equal(v, data[0]) for v in values)
    if collective == "alltoall":
        # values[i][j] must be data[j][i] (the displacement exchange).
        return all(
            np.array_equal(values[i], np.asarray(
                [data[j][i] for j in range(n)]))
            for i in range(n)
        )
    raise ValueError(f"unknown collective {collective!r}")


def run_scenario(
    topo: str,
    scenario_seed: int,
    collective: str,
    mtbf: float,
    horizon: float,
    sweep_delay: float,
    words: int,
    max_retries: int,
) -> tuple[float, ...]:
    """One chaos scenario (module-level: picklable for worker pools).

    Returns the flat metrics vector
    ``(completed, semantic_ok, delivered_fraction, retransmissions,
    dropped_packets, repairs, recovery_latency, time_us, lost)``.
    """
    spec = get_topology(topo)
    fab = build_fabric(spec)
    tables = route_dmodk(fab)
    n = fab.num_endports
    sched = FaultSchedule.random(
        fab, seed=scenario_seed, horizon=horizon, mtbf=mtbf)
    comm = Communicator(
        tables,
        faults=sched,
        retry=RetryPolicy(max_retries=max_retries, seed=scenario_seed),
        sweep_delay=sweep_delay,
    )
    data = _scenario_data(collective, n, words)
    try:
        res = getattr(comm, collective)(data)
    except DeliveryError as err:
        m = err.metrics
        return (0.0, 1.0, m.delivered_fraction, float(m.retransmissions),
                float(m.dropped_packets), float(len(m.repairs)),
                m.recovery_latency, m.time_us, float(len(err.lost)))
    m = comm.last_faults
    ok = _semantics_ok(collective, n, words, data, res.values)
    return (1.0, float(ok), m.delivered_fraction, float(m.retransmissions),
            float(m.dropped_packets), float(len(m.repairs)),
            m.recovery_latency, m.time_us, 0.0)


def _baseline_time(topo: str, collective: str, words: int) -> float:
    """Fault-free packet-priced time of the same collective (the
    denominator of the slowdown column -- same engine, empty schedule)."""
    spec = get_topology(topo)
    fab = build_fabric(spec)
    tables = route_dmodk(fab)
    comm = Communicator(tables, faults=FaultSchedule())
    data = _scenario_data(collective, fab.num_endports, words)
    return getattr(comm, collective)(data).time_us


def run(topo: str = "n16-pgft", campaign: int = 50, seed: int = DEFAULT_SEED,
        mtbf=(500.0, 100.0, 25.0), collective: str = "allreduce",
        horizon: float = 300.0, sweep_delay: float = 50.0,
        words: int = 256, max_retries: int = 8, sweeper=None) -> str:
    if collective not in COLLECTIVES:
        raise SystemExit(
            f"unknown collective {collective!r}; pick one of "
            f"{', '.join(COLLECTIVES)}")
    if sweeper is None:
        sweeper = make_sweeper()
    base_us = _baseline_time(topo, collective, words)

    rows = []
    for level in mtbf:
        argslist = [
            (topo, seed + i, collective, float(level), horizon,
             sweep_delay, words, max_retries)
            for i in range(campaign)
        ]
        raw = sweeper.starmap(run_scenario, argslist)
        out = np.asarray([r for r in raw if r is not None])
        if not out.size:
            raise RuntimeError(
                f"chaos campaign mtbf={level}: every scenario worker "
                f"failed ({len(sweeper.last_failures)} failures)")
        completed, sem_ok, df = out[:, 0], out[:, 1], out[:, 2]
        retrans, repairs = out[:, 3], out[:, 5]
        recovery, time_us, lost = out[:, 6], out[:, 7], out[:, 8]
        silent = np.flatnonzero((completed > 0) & (sem_ok == 0))
        if silent.size:
            bad = [seed + int(i) for i in silent]
            raise RuntimeError(
                f"SILENT DATA LOSS: scenario seed(s) {bad} completed "
                f"{collective} with wrong data (mtbf={level})")
        done = completed > 0
        rows.append((
            f"{level:g}",
            len(out),
            int(done.sum()),
            int((~done).sum()),
            round(float(df.min()), 3),
            round(float(df.mean()), 3),
            round(float(retrans.mean()), 1),
            round(float(repairs.mean()), 1),
            round(float(np.percentile(recovery, 95)), 1),
            round(float(time_us[done].mean() / base_us), 2)
            if done.any() else "-",
            int(lost.sum()),
        ))

    table = render_table(
        ["mtbf (us)", "scenarios", "ok", "delivery-err", "min df",
         "mean df", "retrans", "repairs", "p95 recovery", "slowdown",
         "lost msgs"],
        rows,
        title=(f"Chaos campaign: {campaign} seeded scenarios x "
               f"{collective} on {topo} (horizon {horizon:g} us, "
               f"sweep delay {sweep_delay:g} us, "
               f"baseline {base_us:.1f} us)\n"
               "(every scenario either delivers semantically-correct "
               "data or raises DeliveryError -- no silent loss)"),
    )
    return f"{table}\n{runtime_summary(sweeper)}"


def main(argv=None) -> None:
    parser = make_parser(__doc__)
    parser.add_argument("--topo", default="n16-pgft")
    parser.add_argument("--campaign", type=int, default=50, metavar="N",
                        help="scenarios per MTBF level (default: %(default)s)")
    parser.add_argument("--mtbf", type=float, nargs="+",
                        default=[500.0, 100.0, 25.0],
                        help="mean time between faults, us (one column set"
                             " per value)")
    parser.add_argument("--collective", default="allreduce",
                        choices=COLLECTIVES)
    parser.add_argument("--horizon", type=float, default=300.0,
                        help="fault schedule horizon, us")
    parser.add_argument("--sweep-delay", type=float, default=50.0,
                        help="SM sweep delay before repairs apply, us")
    parser.add_argument("--words", type=int, default=256,
                        help="float64 words per rank payload")
    parser.add_argument("--max-retries", type=int, default=8)
    add_runtime_args(parser)
    args = parser.parse_args(argv)
    sweeper = make_sweeper(args.jobs, use_cache=False,
                           shard_timeout=args.shard_timeout)
    print(run(topo=args.topo, campaign=args.campaign, seed=args.seed,
              mtbf=tuple(args.mtbf), collective=args.collective,
              horizon=args.horizon, sweep_delay=args.sweep_delay,
              words=args.words, max_retries=args.max_retries,
              sweeper=sweeper))


if __name__ == "__main__":
    main()
