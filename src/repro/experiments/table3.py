"""Table 3: the headline result -- congestion-free routing + ordering.

For 2- and 3-level fabrics, fully populated and with X random nodes
excluded ("Cont.-X"), the proposed configuration (D-Mod-K routing +
topology-aware MPI node order + the collective's permutation sequence)
is analysed against random node ranking:

* **proposed avg/max HSD** -- must be 1.000/1 (congestion-free);
* **random ranking avg HSD** -- the paper's comparison column (average
  over stages of the per-stage max HSD, averaged over several random
  orders); improvement factors up to ~5.2 are reported in the paper.

Partial populations follow the paper's semantics: the permutation
sequence is defined over physical end-port slots and the excluded
nodes' messages are skipped (so stage count reflects the tree size, not
the job size -- section VI).
"""

from __future__ import annotations

import numpy as np

from ..analysis import render_table, sequence_hsd
from ..collectives import hierarchical_recursive_doubling
from ..fabric import build_fabric
from ..ordering import physical_placement, topology_order
from ..routing import route_dmodk
from .common import (
    add_runtime_args,
    get_topology,
    make_parser,
    make_sweeper,
    precheck,
    runtime_summary,
    sampled_shift,
)

__all__ = ["run", "main"]

DEFAULT_CASES = (
    ("n16-pgft", 0), ("n16-pgft", 3),
    ("n128", 0), ("n128", 16),
    ("n324", 0), ("n324", 32),
    ("rlft2-max36", 0), ("rlft2-max36", 100),
    ("n1728", 0), ("n1728", 128),
    ("n1944", 0), ("n1944", 100),
)


def run(
    cases=DEFAULT_CASES,
    num_random_orders: int = 5,
    max_shift_stages: int = 48,
    seed: int = 0,
    jobs: int | None = 1,
    use_cache: bool = False,
    cache_dir=None,
    check: bool = False,
    shard_timeout: float | None = None,
) -> str:
    sweeper = make_sweeper(jobs=jobs, use_cache=use_cache, cache_dir=cache_dir,
                           shard_timeout=shard_timeout)
    rows = []
    rng = np.random.default_rng(seed)
    checked: set[str] = set()
    for topo_name, excluded in cases:
        spec = get_topology(topo_name)
        n_full = spec.num_endports
        tables = route_dmodk(build_fabric(spec))
        if check and topo_name not in checked:
            checked.add(topo_name)
            precheck(tables, routing_name="dmodk", label=topo_name)
        if excluded:
            active = np.sort(rng.permutation(n_full)[: n_full - excluded])
        else:
            active = np.arange(n_full)
        slots = physical_placement(active, n_full)
        n_job = len(active)

        for cps_name, cps in (
            ("shift", sampled_shift(n_full, max_shift_stages)),
            ("recdbl-hier", hierarchical_recursive_doubling(spec)),
        ):
            proposed = sequence_hsd(tables, cps, slots)
            rand = sweeper.order_sweep(
                tables, cps, num_orders=num_random_orders,
                num_ranks=n_job, seed=seed + 1000,
            )
            rand_avg = rand.mean
            label = "full" if not excluded else f"Cont.-{excluded}"
            rows.append((
                topo_name, label, n_job, cps_name,
                round(proposed.avg_max, 3), proposed.worst,
                round(rand_avg, 3),
                round(rand_avg / max(proposed.avg_max, 1e-12), 2),
            ))
    table = render_table(
        ["topology", "population", "job size", "CPS",
         "proposed avg HSD", "worst", "random avg HSD", "improvement"],
        rows,
        title=("Table 3 | proposed routing + node order vs random ranking\n"
               "(paper: proposed HSD = 1 everywhere; improvements up to"
               " 5.2x)"),
    )
    return table + "\n\n" + runtime_summary(sweeper)


def main(argv=None) -> None:
    parser = add_runtime_args(make_parser(__doc__))
    parser.add_argument("--orders", type=int, default=5)
    parser.add_argument("--max-shift-stages", type=int, default=48)
    args = parser.parse_args(argv)
    print(run(num_random_orders=args.orders,
              max_shift_stages=args.max_shift_stages, seed=args.seed,
              jobs=args.jobs, use_cache=not args.no_cache,
              cache_dir=args.cache_dir, check=args.check,
              shard_timeout=args.shard_timeout))


if __name__ == "__main__":
    main()
