"""Multi-job operation: sub-allocated jobs never interfere.

The paper proves congestion freedom for a single job and leaves shared
clusters as future work (section V mentions the 36 sub-allocations of
324 nodes on the maximal 3-level tree).  This experiment implements
that direction: several jobs, each granted whole level-(h-1) sub-tree
units, all run global Shift collectives *simultaneously* -- and every
directed link still carries at most one flow (inter-job isolation),
with the fluid simulator confirming each job gets full bandwidth as if
it were alone.
"""

from __future__ import annotations

import numpy as np

from ..analysis import render_table, sequence_hsd, stage_link_loads
from ..collectives import shift
from ..collectives.schedule import stage_flows
from ..fabric import build_fabric
from ..jobs import SubAllocator
from ..routing import route_dmodk
from ..sim import FluidSimulator, cps_workload, merge_sequences
from .common import get_topology, make_parser

__all__ = ["run", "main"]


def run(topo: str = "rlft2-max36", job_units=(6, 12, 9),
        message_kb: int = 256) -> str:
    spec = get_topology(topo)
    alloc = SubAllocator(spec)
    fabric = build_fabric(spec)
    tables = route_dmodk(fabric)
    types = ("compute", "storage", "analytics")
    jobs = [alloc.allocate(u * alloc.unit_size, node_type=types[i % len(types)])
            for i, u in enumerate(job_units)]
    # Tag the fabric with the tenancy map so downstream checks
    # (``--isolation``) see the same classes the allocator granted.
    fabric.node_types = alloc.node_type_map()

    rows = []
    sim = FluidSimulator(tables)
    size = message_kb * 1024.0
    workloads = []
    for job in jobs:
        cps = shift(job.num_ranks, displacements=range(1, 17))
        rep = sequence_hsd(tables, cps, job.placement)
        wl = cps_workload(cps, job.placement, spec.num_endports, size)
        solo = sim.run_sequences(wl)
        workloads.append(wl)
        # per-job certification is job-aware: only the job's own active
        # end-ports count (Cont.-X semantics via ``job.active``)
        assert len(job.active) == len(job.units) * alloc.unit_size
        rows.append((f"job {job.job_id} ({job.node_type})", len(job.units),
                     job.num_ranks, rep.worst,
                     round(solo.normalized_bandwidth, 3)))
    all_seqs = merge_sequences(*workloads)

    # All jobs together: combined per-stage HSD and combined bandwidth.
    combined_worst = 0
    stage_sets = [shift(j.num_ranks, displacements=range(1, 17)).stages
                  for j in jobs]
    for k in range(max(len(s) for s in stage_sets)):
        srcs, dsts = [], []
        for job, stages in zip(jobs, stage_sets):
            if k < len(stages):
                s, d = stage_flows(stages[k], job.placement)
                srcs.append(s)
                dsts.append(d)
        loads = stage_link_loads(tables, np.concatenate(srcs),
                                 np.concatenate(dsts))
        combined_worst = max(combined_worst, int(loads.max()))
    together = sim.run_sequences(all_seqs)
    rows.append(("all concurrent", sum(len(j.units) for j in jobs),
                 sum(j.num_ranks for j in jobs), combined_worst,
                 round(together.normalized_bandwidth, 3)))

    return render_table(
        ["job", "units", "ranks", "worst HSD", "normBW"],
        rows,
        title=(f"Multi-job isolation on {spec} | unit ="
               f" {alloc.unit_size} end-ports,"
               f" {alloc.num_units} units total\n"
               "(extension of section V: sub-allocated jobs run"
               " concurrently with zero interference)"),
    )


def main(argv=None) -> None:
    parser = make_parser(__doc__)
    parser.add_argument("--topo", default="rlft2-max36")
    parser.add_argument("--job-units", type=int, nargs="+", default=[6, 12, 9])
    parser.add_argument("--message-kb", type=int, default=256)
    args = parser.parse_args(argv)
    print(run(topo=args.topo, job_units=tuple(args.job_units),
              message_kb=args.message_kb))


if __name__ == "__main__":
    main()
