"""``repro-experiments``: one entry point for every paper artefact.

Usage::

    repro-experiments list
    repro-experiments fig3 --orders 25
    repro-experiments fig3 --jobs 4           # parallel sweep engine
    repro-experiments fig3 --no-cache         # skip the result cache
    repro-experiments all          # run everything with default params

The sweep-heavy drivers (``fig3``, ``table3``, ``ablation``) accept
``--jobs N`` (worker processes; 0 = one per core), ``--no-cache`` and
``--cache-dir DIR``: results are cached on disk keyed by a content
digest of (topology, routing tables, CPS, seed range), so a warm
re-run recomputes nothing -- the trailing ``runtime |`` summary line
reports the hit/miss counters.
"""

from __future__ import annotations

import sys

from . import ablation, chaos, contention_free, degradation, failures
from . import fig1, fig2, fig3, generations, isolation, latency
from . import multijob, ring_adversarial, table1, table3

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = {
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "table1": table1,
    "table3": table3,
    "ring-adversarial": ring_adversarial,
    "contention-free": contention_free,
    "ablation": ablation,
    "multijob": multijob,
    "isolation": isolation,
    "failures": failures,
    "degradation": degradation,
    "chaos": chaos,
    "latency": latency,
    "generations": generations,
}


def main(argv=None) -> None:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "list"):
        print("available experiments:")
        for name, mod in EXPERIMENTS.items():
            doc = (mod.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:18s} {doc}")
        print("\nrun one:  repro-experiments <name> [options]")
        print("run all:  repro-experiments all")
        return
    name, rest = argv[0], argv[1:]
    if name == "all":
        for key, mod in EXPERIMENTS.items():
            print(f"\n{'=' * 72}\n>>> {key}\n{'=' * 72}")
            mod.main([])
        return
    if name not in EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {name!r}; try: repro-experiments list"
        )
    EXPERIMENTS[name].main(rest)


if __name__ == "__main__":
    main()
