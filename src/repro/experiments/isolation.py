"""Multi-tenant isolation: static class certificates bound the dynamics.

Two tenant classes (compute + storage) share one fabric in the
adversarial *staggered* layout -- each leaf donates a rotating slice of
end-ports to storage, so class members are scattered and type-blind
D-Mod-K loses per-class rank density.  Both classes run their own Shift
collective concurrently.  For each routing (type-aware vs plain
D-Mod-K) the experiment:

1. certifies each class symbolically (``IsolationPass``) -- per-class
   worst link load, cross-class interference bound and combined worst
   link load, all without touching the simulators;
2. re-derives the same quantities dynamically by walking the
   materialised tables stage by stage (per-link flow accounting -- an
   independent code path from the symbolic closed form);
3. runs the fluid simulator (barrier mode, so per-stage static bounds
   apply) per class solo and all classes concurrent, plus an optional
   packet-simulator spot check on the leading stages.

The validation claim printed per row: the dynamic loads never exceed
the static certificates, and the concurrent slowdown never exceeds the
combined worst link load the analyzer predicted.
"""

from __future__ import annotations

import numpy as np

from ..analysis import render_table
from ..analysis.hsd import stage_class_link_loads
from ..check import CheckContext, build_class_schedules, run_check
from ..collectives.cps import CPS
from ..collectives.schedule import stage_flows
from ..fabric import NodeTypeMap, build_fabric
from ..routing import route_dmodk, route_typeaware
from ..sim import FluidSimulator, PacketSimulator, cps_workload, merge_sequences
from .common import get_topology, make_parser

__all__ = ["run", "measure", "main"]

ROUTINGS = ("typeaware", "dmodk")


def _aligned_stage(schedules, k):
    """Concatenated flows of stage ``k`` across every class."""
    srcs, dsts, fcs = [], [], []
    for ci, cs in enumerate(schedules):
        if k < len(cs.cps.stages):
            s, d = stage_flows(cs.cps.stages[k], cs.ports)
            keep = s != d
            srcs.append(s[keep])
            dsts.append(d[keep])
            fcs.append(np.full(keep.sum(), ci, dtype=np.int64))
    return (np.concatenate(srcs), np.concatenate(dsts), np.concatenate(fcs))


def measure(topo: str = "n324", storage_per_leaf: int = 2,
            routing: str = "typeaware", max_stages: int = 16,
            message_kb: int = 64, packet_stages: int = 0) -> dict:
    """One routing's static certificates + dynamic validation numbers."""
    if routing not in ROUTINGS:
        raise ValueError(f"routing must be one of {ROUTINGS}, got {routing!r}")
    spec = get_topology(topo)
    fabric = build_fabric(spec)
    types = NodeTypeMap.staggered(spec, {"storage": storage_per_leaf})
    fabric.node_types = types

    tables = (route_typeaware(fabric) if routing == "typeaware"
              else route_dmodk(fabric))

    # 1. static: symbolic per-class certificates + interference bound
    ctx = CheckContext(fabric=fabric, tables=tables, routing_name=routing)
    result = run_check(ctx, only={"isolation"},
                       isolation=dict(cps_name="shift", max_stages=max_stages,
                                      engine="symbolic"))
    iso = result.artifacts["isolation"]
    static_worst = dict(iso["per_class_worst"])
    cross = int(iso["cross_class_bound"])
    combined = int(iso["max_combined_load"])

    # 2. dynamic per-link flow accounting over the materialised tables
    schedules = build_class_schedules(types, cps_name="shift",
                                      max_stages=max_stages)
    dyn_worst = {cs.name: 0 for cs in schedules}
    dyn_combined = 0
    for k in range(max(len(cs.cps.stages) for cs in schedules)):
        src, dst, fc = _aligned_stage(schedules, k)
        loads = stage_class_link_loads(tables, src, dst, fc,
                                       num_classes=len(schedules))
        for ci, cs in enumerate(schedules):
            dyn_worst[cs.name] = max(dyn_worst[cs.name],
                                     int(loads[ci].max()))
        dyn_combined = max(dyn_combined, int(loads.sum(axis=0).max()))

    # 3. fluid dynamics: each class solo, then all classes concurrent.
    # Barrier mode keeps stage k of every class aligned (the classes
    # partition the end-ports), which is exactly the static model.
    sim = FluidSimulator(tables)
    size = message_kb * 1024.0
    workloads = [cps_workload(cs.cps, cs.ports, spec.num_endports, size)
                 for cs in schedules]
    solo = {cs.name: sim.run_sequences(wl, mode="barrier")
            for cs, wl in zip(schedules, workloads)}
    together = sim.run_sequences(merge_sequences(*workloads), mode="barrier")
    worst_solo = max(r.makespan for r in solo.values())
    slowdown = together.makespan / worst_solo if worst_solo > 0 else 1.0

    packet = None
    if packet_stages > 0:
        head = [
            cps_workload(CPS(cs.cps.name, cs.cps.num_ranks,
                             cs.cps.stages[:packet_stages]),
                         cs.ports, spec.num_endports, size)
            for cs in schedules
        ]
        packet = PacketSimulator(tables).run_sequences(
            merge_sequences(*head))

    return {
        "topology": str(spec),
        "routing": routing,
        "classes": {cs.name: int(len(cs.ports)) for cs in schedules},
        "static_worst": static_worst,
        "cross_class_bound": cross,
        "max_combined_load": combined,
        "dynamic_worst": dyn_worst,
        "dynamic_combined": dyn_combined,
        "solo_normbw": {n: r.normalized_bandwidth for n, r in solo.items()},
        "together_normbw": together.normalized_bandwidth,
        "slowdown": slowdown,
        "packet_normbw": (packet.normalized_bandwidth
                          if packet is not None else None),
        # the validation claims: dynamics never exceed the static bounds
        "dynamic_within_static": all(
            dyn_worst[n] <= static_worst[n] for n in dyn_worst
        ) and dyn_combined <= combined,
        "slowdown_within_bound": slowdown <= combined + 0.05,
    }


def run(topo: str = "n324", storage_per_leaf: int = 2,
        max_stages: int = 16, message_kb: int = 64,
        packet_stages: int = 2) -> str:
    rows = []
    ok = True
    for routing in ROUTINGS:
        m = measure(topo=topo, storage_per_leaf=storage_per_leaf,
                    routing=routing, max_stages=max_stages,
                    message_kb=message_kb, packet_stages=packet_stages)
        ok = ok and m["dynamic_within_static"] and m["slowdown_within_bound"]
        for name in sorted(m["classes"]):
            rows.append((routing, name, m["classes"][name],
                         m["static_worst"][name], m["dynamic_worst"][name],
                         round(m["solo_normbw"][name], 3), "", ""))
        rows.append((routing, "all concurrent", sum(m["classes"].values()),
                     m["max_combined_load"], m["dynamic_combined"],
                     round(m["together_normbw"], 3),
                     round(m["slowdown"], 2),
                     "yes" if (m["dynamic_within_static"]
                               and m["slowdown_within_bound"]) else "NO"))
        topology = m["topology"]
    verdict = ("dynamics never exceed the static certificates"
               if ok else "VIOLATION: dynamics exceeded a static bound")
    return render_table(
        ["routing", "class", "ports", "static worst", "dynamic worst",
         "normBW", "slowdown", "dyn<=static"],
        rows,
        title=(f"Multi-tenant class isolation on {topology} | "
               f"staggered storage={storage_per_leaf}/leaf, "
               f"Shift x{max_stages} stages per class\n"
               f"({verdict}; type-aware routing keeps every class "
               "contention-free where D-Mod-K does not)"),
    )


def main(argv=None) -> None:
    parser = make_parser(__doc__)
    parser.add_argument("--topo", default="n324")
    parser.add_argument("--storage-per-leaf", type=int, default=2)
    parser.add_argument("--max-stages", type=int, default=16)
    parser.add_argument("--message-kb", type=int, default=64)
    parser.add_argument("--packet-stages", type=int, default=2)
    args = parser.parse_args(argv)
    print(run(topo=args.topo, storage_per_leaf=args.storage_per_leaf,
              max_stages=args.max_stages, message_kb=args.message_kb,
              packet_stages=args.packet_stages))


if __name__ == "__main__":
    main()
