"""Shared plumbing for the experiment drivers.

Every experiment module exposes ``run(**params) -> str`` returning the
text report (the same rows/series the paper's table or figure shows)
and a ``main(argv)`` for command-line use via
``python -m repro.experiments.<name>`` or the ``repro-experiments``
console script.
"""

from __future__ import annotations

import argparse

import numpy as np

from ..analysis.hsd import sequence_hsd
from ..collectives import (
    binomial,
    dissemination,
    hierarchical_recursive_doubling,
    recursive_doubling,
    ring,
    shift,
    tournament,
)
from ..fabric import build_fabric
from ..fabric.model import Fabric
from ..routing import route_dmodk
from ..topology import paper_topologies
from ..topology.spec import PGFTSpec

__all__ = [
    "get_topology",
    "figure3_cps_factories",
    "sampled_shift",
    "make_parser",
    "DEFAULT_SEED",
]

DEFAULT_SEED = 20110516  # the paper's conference month


def get_topology(name: str) -> PGFTSpec:
    """Resolve an evaluation topology by name (see ``paper_topologies``)."""
    topos = paper_topologies()
    if name not in topos:
        raise SystemExit(
            f"unknown topology {name!r}; available: {', '.join(sorted(topos))}"
        )
    return topos[name]


def sampled_shift(n: int, max_stages: int = 64):
    """Shift CPS with at most ``max_stages`` evenly sampled displacements
    (the full sequence has ``n-1`` stages; sampling keeps large-fabric
    sweeps tractable without biasing the per-stage HSD statistics)."""
    if n - 1 <= max_stages:
        return shift(n)
    step = (n - 1) // max_stages
    return shift(n, displacements=range(1, n, step))


def figure3_cps_factories(max_shift_stages: int = 64) -> dict:
    """The six collectives of Figure 3 ("Butterfly" is the paper's name
    for the recursive-doubling exchange)."""
    return {
        "binomial": lambda n: binomial(n),
        "butterfly": lambda n: recursive_doubling(n),
        "dissemination": lambda n: dissemination(n),
        "ring": lambda n: ring(n),
        "shift": lambda n: sampled_shift(n, max_shift_stages),
        "tournament": lambda n: tournament(n),
    }


def make_parser(description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="base RNG seed (default: %(default)s)")
    return parser
