"""Shared plumbing for the experiment drivers.

Every experiment module exposes ``run(**params) -> str`` returning the
text report (the same rows/series the paper's table or figure shows)
and a ``main(argv)`` for command-line use via
``python -m repro.experiments.<name>`` or the ``repro-experiments``
console script.
"""

from __future__ import annotations

import argparse

import numpy as np

from ..analysis.hsd import sequence_hsd
from ..collectives import (
    binomial,
    dissemination,
    hierarchical_recursive_doubling,
    recursive_doubling,
    ring,
    shift,
    tournament,
)
from ..fabric import build_fabric
from ..fabric.model import Fabric
from ..routing import route_dmodk
from ..runtime import ParallelSweeper, ResultCache, resolve_jobs
from ..topology import paper_topologies
from ..topology.spec import PGFTSpec

__all__ = [
    "get_topology",
    "figure3_cps_factories",
    "sampled_shift",
    "make_parser",
    "add_runtime_args",
    "make_sweeper",
    "precheck",
    "runtime_summary",
    "DEFAULT_SEED",
]

DEFAULT_SEED = 20110516  # the paper's conference month


def get_topology(name: str) -> PGFTSpec:
    """Resolve an evaluation topology by name (see ``paper_topologies``)."""
    topos = paper_topologies()
    if name not in topos:
        raise SystemExit(
            f"unknown topology {name!r}; available: {', '.join(sorted(topos))}"
        )
    return topos[name]


def sampled_shift(n: int, max_stages: int = 64):
    """Shift CPS with at most ``max_stages`` evenly sampled displacements
    (the full sequence has ``n-1`` stages; sampling keeps large-fabric
    sweeps tractable without biasing the per-stage HSD statistics)."""
    if n - 1 <= max_stages:
        return shift(n)
    step = (n - 1) // max_stages
    return shift(n, displacements=range(1, n, step))


def figure3_cps_factories(max_shift_stages: int = 64) -> dict:
    """The six collectives of Figure 3 ("Butterfly" is the paper's name
    for the recursive-doubling exchange)."""
    return {
        "binomial": lambda n: binomial(n),
        "butterfly": lambda n: recursive_doubling(n),
        "dissemination": lambda n: dissemination(n),
        "ring": lambda n: ring(n),
        "shift": lambda n: sampled_shift(n, max_shift_stages),
        "tournament": lambda n: tournament(n),
    }


def make_parser(description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="base RNG seed (default: %(default)s)")
    return parser


def add_runtime_args(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """The sweep-engine flag surface shared by the sweep-heavy drivers."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweeps (0 = one per core; default: 1,"
             " which still uses the batched fast path inline)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed sweep result cache")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or"
             " ~/.cache/repro/sweeps)")
    parser.add_argument(
        "--check", action="store_true",
        help="pre-flight every routed table set through the repro.check"
             " static analyzer before sweeping (abort on errors)")
    parser.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="per-round deadline for parallel sweep shards; work still"
             " outstanding is recorded as failed and the sweep returns a"
             " partial result instead of hanging (default: no timeout)")
    return parser


def precheck(tables, routing_name: str = "", label: str = "") -> None:
    """Gate a driver's input tables through the static analyzer.

    Runs the fast ``repro.check`` subset (wiring, reachability,
    up*/down*, CDG, D-Mod-K conformance, theorem 2) and aborts the
    experiment with the findings if any *error* is reported -- hours of
    sweep compute should not be spent on a miswired or misrouted fabric.
    Warnings are printed but do not abort.
    """
    from ..check import precheck_tables

    result = precheck_tables(tables, routing_name=routing_name)
    tag = f" [{label}]" if label else ""
    if len(result.report):
        print(f"repro.check{tag}:")
        print(result.report.render_text())
    if result.report.has_errors:
        raise SystemExit(
            f"repro.check{tag}: input tables failed the pre-flight check "
            f"({result.report.summary()['errors']} error(s)); aborting")


def make_sweeper(jobs: int | None = 1, use_cache: bool = False,
                 cache_dir=None,
                 shard_timeout: float | None = None) -> ParallelSweeper:
    """Build the sweep engine a driver was asked for."""
    cache = None
    if use_cache:
        cache = ResultCache(root=cache_dir) if cache_dir else ResultCache()
    return ParallelSweeper(jobs=jobs, cache=cache,
                           shard_timeout=shard_timeout)


def runtime_summary(sweeper: ParallelSweeper) -> str:
    """One-line run summary: worker count, cache counters, shard failures."""
    if sweeper.jobs in (None, 0):
        jobs = "auto"
    else:
        jobs = resolve_jobs(sweeper.jobs)  # e.g. clamp negatives to 1
    if sweeper.cache is None:
        line = f"runtime | jobs={jobs} cache=off"
    else:
        line = (f"runtime | jobs={jobs} cache=on {sweeper.cache.stats}"
                f" dir={sweeper.cache.root}")
    if sweeper.last_failures:
        detail = "; ".join(
            f"{f.index}: {f.reason} (attempt {f.attempts})"
            for f in sweeper.last_failures[:4])
        more = (f" and {len(sweeper.last_failures) - 4} more"
                if len(sweeper.last_failures) > 4 else "")
        line += (f"\nWARNING | {len(sweeper.last_failures)} shard(s) failed"
                 f" -- partial result: {detail}{more}")
    return line
