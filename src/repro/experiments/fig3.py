"""Figure 3: average max hot-spot-degree vs cluster size.

For fabrics of 128, 324, 1728 and 1944 nodes, six global collectives
are analysed under deterministic (D-Mod-K) routing and **random** MPI
node order: per random order, the maximum HSD of any link is averaged
over the stages of the collective; 25 orders give the mean and min/max
"error bars".  Ring, Shift and Butterfly (recursive doubling) grow
steeply with cluster size -- the scalability problem the paper solves.
"""

from __future__ import annotations

from ..analysis import random_order_sweep, render_table
from ..fabric import build_fabric
from ..routing import route_dmodk
from .common import figure3_cps_factories, get_topology, make_parser

__all__ = ["run", "main"]

DEFAULT_TOPOS = ("n128", "n324", "n1728", "n1944")


def run(
    topos=DEFAULT_TOPOS,
    num_orders: int = 25,
    max_shift_stages: int = 64,
    seed: int = 0,
) -> str:
    factories = figure3_cps_factories(max_shift_stages)
    rows = []
    for name in topos:
        spec = get_topology(name)
        tables = route_dmodk(build_fabric(spec))
        for cps_name, factory in factories.items():
            res = random_order_sweep(
                tables, factory, num_orders=num_orders, seed=seed
            )
            rows.append((
                name, spec.num_endports, cps_name,
                round(res.mean, 3), round(res.min, 3), round(res.max, 3),
            ))
    return render_table(
        ["topology", "nodes", "collective", "avg max HSD", "min", "max"],
        rows,
        title=("Figure 3 | average of per-stage max HSD over "
               f"{num_orders} random node orders\n"
               "(paper: ring/shift/butterfly grow with size; HSD 1 means"
               " congestion-free)"),
    )


def main(argv=None) -> None:
    parser = make_parser(__doc__)
    parser.add_argument("--topos", nargs="+", default=list(DEFAULT_TOPOS))
    parser.add_argument("--orders", type=int, default=25)
    parser.add_argument("--max-shift-stages", type=int, default=64)
    args = parser.parse_args(argv)
    print(run(topos=args.topos, num_orders=args.orders,
              max_shift_stages=args.max_shift_stages, seed=args.seed))


if __name__ == "__main__":
    main()
