"""Figure 3: average max hot-spot-degree vs cluster size.

For fabrics of 128, 324, 1728 and 1944 nodes, six global collectives
are analysed under deterministic (D-Mod-K) routing and **random** MPI
node order: per random order, the maximum HSD of any link is averaged
over the stages of the collective; 25 orders give the mean and min/max
"error bars".  Ring, Shift and Butterfly (recursive doubling) grow
steeply with cluster size -- the scalability problem the paper solves.
"""

from __future__ import annotations

from ..analysis import render_table
from ..fabric import build_fabric
from ..routing import route_dmodk
from .common import (
    add_runtime_args,
    figure3_cps_factories,
    get_topology,
    make_parser,
    make_sweeper,
    precheck,
    runtime_summary,
)

__all__ = ["run", "main"]

DEFAULT_TOPOS = ("n128", "n324", "n1728", "n1944")


def run(
    topos=DEFAULT_TOPOS,
    num_orders: int = 25,
    max_shift_stages: int = 64,
    seed: int = 0,
    jobs: int | None = 1,
    use_cache: bool = False,
    cache_dir=None,
    check: bool = False,
    shard_timeout: float | None = None,
) -> str:
    sweeper = make_sweeper(jobs=jobs, use_cache=use_cache, cache_dir=cache_dir,
                           shard_timeout=shard_timeout)
    factories = figure3_cps_factories(max_shift_stages)
    rows = []
    for name in topos:
        spec = get_topology(name)
        tables = route_dmodk(build_fabric(spec))
        if check:
            precheck(tables, routing_name="dmodk", label=name)
        for cps_name, factory in factories.items():
            res = sweeper.order_sweep(
                tables, factory, num_orders=num_orders, seed=seed
            )
            rows.append((
                name, spec.num_endports, cps_name,
                round(res.mean, 3), round(res.min, 3), round(res.max, 3),
            ))
    table = render_table(
        ["topology", "nodes", "collective", "avg max HSD", "min", "max"],
        rows,
        title=("Figure 3 | average of per-stage max HSD over "
               f"{num_orders} random node orders\n"
               "(paper: ring/shift/butterfly grow with size; HSD 1 means"
               " congestion-free)"),
    )
    return table + "\n\n" + runtime_summary(sweeper)


def main(argv=None) -> None:
    parser = add_runtime_args(make_parser(__doc__))
    parser.add_argument("--topos", nargs="+", default=list(DEFAULT_TOPOS))
    parser.add_argument("--orders", type=int, default=25)
    parser.add_argument("--max-shift-stages", type=int, default=64)
    args = parser.parse_args(argv)
    print(run(topos=args.topos, num_orders=args.orders,
              max_shift_stages=args.max_shift_stages, seed=args.seed,
              jobs=args.jobs, use_cache=not args.no_cache,
              cache_dir=args.cache_dir, check=args.check,
              shard_timeout=args.shard_timeout))


if __name__ == "__main__":
    main()
