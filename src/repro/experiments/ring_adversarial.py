"""Section II's adversarial Ring: 92.9 % bandwidth collapse.

The adversarial node order funnels every leaf's flows onto a single
up-going link; with ``m`` hosts per leaf the oversubscription is ``m``
(18 for 36-port-switch fabrics) and the measured bandwidth collapses to
``link_bw / m`` -- the paper reports 231.5 MB/s ~= 7.1 % of nominal.

We regenerate the measurement with the fluid simulator and compare
against the analytic bound and the topology-ordered reference.
"""

from __future__ import annotations

from ..analysis import render_table, sequence_hsd
from ..collectives import ring
from ..collectives.schedule import stage_flows
from ..fabric import build_fabric
from ..ordering import adversarial_ring_order, topology_order
from ..routing import route_dmodk
from ..sim import FluidSimulator, bandwidth_lower_bound, permutation_workload
from .common import get_topology, make_parser

__all__ = ["run", "main"]


def run(topo: str = "n324", message_kb: int = 256, repeats: int = 6) -> str:
    spec = get_topology(topo)
    tables = route_dmodk(build_fabric(spec))
    n = spec.num_endports
    sim = FluidSimulator(tables)
    size = message_kb * 1024.0

    rows = []
    for label, order in (
        ("adversarial", adversarial_ring_order(spec)),
        ("topology-aware", topology_order(n)),
    ):
        src, dst = stage_flows(ring(n).stages[0], order)
        hsd = sequence_hsd(tables, ring(n), order).worst
        wl = permutation_workload(src, dst, n, size, repeats=repeats)
        res = sim.run_sequences(wl)
        mbps = res.per_port_bandwidth  # B/us == MB/s
        rows.append((
            label, hsd, round(mbps, 1),
            f"{100 * res.normalized_bandwidth:.1f}%",
        ))

    bound = bandwidth_lower_bound(spec.m[0], res.calibration)
    return render_table(
        ["node order", "max HSD", "per-port BW [MB/s]", "normalized"],
        rows,
        title=(f"Ring adversary on {spec} | analytic bound for HSD "
               f"{spec.m[0]}: {res.calibration.link_bandwidth / spec.m[0]:.0f}"
               f" MB/s = {100 * bound:.1f}% "
               "(paper: 231.5 MB/s = 7.1%)"),
    )


def main(argv=None) -> None:
    parser = make_parser(__doc__)
    parser.add_argument("--topo", default="n324")
    parser.add_argument("--message-kb", type=int, default=256)
    parser.add_argument("--repeats", type=int, default=6)
    args = parser.parse_args(argv)
    print(run(topo=args.topo, message_kb=args.message_kb,
              repeats=args.repeats))


if __name__ == "__main__":
    main()
