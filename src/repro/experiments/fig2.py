"""Figure 2: normalized effective bandwidth vs message size.

The paper simulates Shift and Recursive-Doubling destination sequences
with *random* MPI node order on a 1944-node fabric and reports
bytes/time normalised to the PCIe bandwidth: large messages sink toward
~40 % and Recursive-Doubling is depressed even for short messages (its
11-stage sequence gives no room for contention to average out).

Two simulator backends regenerate the series:

* ``--model fluid`` (default) -- the max-min fluid model at the larger
  default topology (324 nodes, sampled Shift window).  It reproduces
  the ~40 % degradation *level* but not the downward slope (fair-share
  contention is size-invariant).
* ``--model packet`` -- the credit-flow-controlled packet simulator,
  running the paper-scale default topology (n324) directly: the
  vectorized wave-calendar engine advances contention-free convoys
  analytically and falls back to the event-driven core only when link
  occupancy actually conflicts.  Finite input buffers back-pressure
  long convoys (tree saturation), reproducing the paper's *decreasing*
  bandwidth with message size.

Pass ``--topo n1944 --shift-stages 0`` for the full-size fluid run if
you have the patience.  The topology-aware order is included as the
contention-free reference line.  ``--engine reference`` forces the
event-driven packet core (slow; warns above its validated size).
"""

from __future__ import annotations

import warnings

from ..analysis import render_series
from ..collectives import recursive_doubling, shift
from ..fabric import build_fabric
from ..ordering import random_order, topology_order
from ..routing import route_dmodk
from ..sim import FluidSimulator, PacketSimulator, cps_workload
from .common import get_topology, make_parser

__all__ = ["run", "main"]

DEFAULT_SIZES_KB = (16, 64, 256, 1024)

#: Largest end-port count the event-driven reference engine has been
#: exercised at routinely.  Bigger fabrics run fine but take minutes to
#: hours; the vectorized engine is the supported path at paper scale.
REFERENCE_ENGINE_VALIDATED_PORTS = 64


def run(
    topo: str = "n324",
    sizes_kb=DEFAULT_SIZES_KB,
    shift_stages: int = 16,
    seed: int = 1,
    model: str = "fluid",
    credits: int = 4,
    engine: str = "vector",
) -> str:
    if model not in ("fluid", "packet"):
        raise SystemExit(f"model must be fluid|packet, got {model!r}")
    spec = get_topology(topo)
    tables = route_dmodk(build_fabric(spec))
    n = spec.num_endports
    if (model == "packet" and engine == "reference"
            and n > REFERENCE_ENGINE_VALIDATED_PORTS):
        warnings.warn(
            f"reference packet engine on {n} end-ports exceeds its"
            f" validated size ({REFERENCE_ENGINE_VALIDATED_PORTS});"
            " expect minutes-to-hours runtimes -- use engine='vector'",
            RuntimeWarning,
            stacklevel=2,
        )

    def simulate(wl):
        if model == "fluid":
            return FluidSimulator(tables).run_sequences(wl)
        return PacketSimulator(
            tables, credit_limit=credits, max_events=50_000_000,
            engine=engine,
        ).run_sequences(wl)

    if shift_stages and shift_stages < n - 1:
        shift_cps = shift(n, displacements=range(1, shift_stages + 1))
    else:
        shift_cps = shift(n)
    rd_cps = recursive_doubling(n)
    rand = random_order(n, seed=seed)
    topo_ord = topology_order(n)

    series: dict[str, list[float]] = {
        "shift/random": [], "recdbl/random": [], "shift/ordered": []
    }
    for kb in sizes_kb:
        size = float(kb) * 1024.0
        for label, cps, order in (
            ("shift/random", shift_cps, rand),
            ("recdbl/random", rd_cps, rand),
            ("shift/ordered", shift_cps, topo_ord),
        ):
            wl = cps_workload(cps, order, n, size)
            res = simulate(wl)
            series[label].append(round(res.normalized_bandwidth, 3))

    detail = (f"{model} model"
              + (f", {credits}-packet credits" if model == "packet" else ""))
    return render_series(
        "msg size [KB]", list(sizes_kb), series,
        title=(f"Figure 2 | normalized effective BW vs message size on {spec}"
               f" ({detail})\n"
               f"(paper: random order sinks toward ~0.4 of PCIe bandwidth;"
               f" ordered runs at full bandwidth)"),
    )


def main(argv=None) -> None:
    parser = make_parser(__doc__)
    parser.add_argument("--topo", default="n324")
    parser.add_argument("--sizes-kb", type=int, nargs="+",
                        default=list(DEFAULT_SIZES_KB))
    parser.add_argument("--shift-stages", type=int, default=16,
                        help="Shift stage window (0 = all n-1 stages)")
    parser.add_argument("--model", choices=("fluid", "packet"),
                        default="fluid")
    parser.add_argument("--credits", type=int, default=4,
                        help="input-buffer credits for the packet model")
    parser.add_argument("--engine", choices=("vector", "reference"),
                        default="vector",
                        help="packet-model inner engine")
    args = parser.parse_args(argv)
    print(run(topo=args.topo, sizes_kb=args.sizes_kb,
              shift_stages=args.shift_stages, seed=args.seed,
              model=args.model, credits=args.credits,
              engine=args.engine))


if __name__ == "__main__":
    main()
