"""Message-latency distributions: cut-through vs queueing (extension).

Section VII claims the proposed configuration delivers "cut-through
latency"; a distribution makes the claim sharper than a mean.  The
packet simulator reports per-message latencies for Shift traffic under
both orders; the report prints P50/P95/P99/max against the analytic
zero-load value, optionally with credit flow control to show the
back-pressure tail.
"""

from __future__ import annotations

import numpy as np

from ..analysis import render_table
from ..collectives import shift
from ..fabric import build_fabric
from ..ordering import random_order, topology_order
from ..routing import route_dmodk
from ..sim import PacketSimulator, QDR_PCIE_GEN2, cps_workload
from .common import get_topology, make_parser

__all__ = ["run", "main"]


def run(topo: str = "n16-pgft", message_kb: int = 64,
        credits: int | None = None, seed: int = 3) -> str:
    spec = get_topology(topo)
    tables = route_dmodk(build_fabric(spec))
    n = spec.num_endports
    size = message_kb * 1024.0
    zero_load = QDR_PCIE_GEN2.zero_load_latency(int(size), hops=2 * spec.h - 1)

    rows = []
    for label, order in (
        ("ordered", topology_order(n)),
        ("random", random_order(n, seed=seed)),
    ):
        wl = cps_workload(shift(n), order, n, size)
        res = PacketSimulator(tables, credit_limit=credits,
                              max_events=30_000_000).run_sequences(wl)
        lat = res.latencies
        rows.append((
            label,
            round(float(np.percentile(lat, 50)), 2),
            round(float(np.percentile(lat, 95)), 2),
            round(float(np.percentile(lat, 99)), 2),
            round(float(lat.max()), 2),
            round(float(lat.max()) / zero_load, 2),
        ))
    credit_txt = "infinite buffers" if credits is None else f"{credits} credits"
    return render_table(
        ["order", "P50 [us]", "P95 [us]", "P99 [us]", "max [us]",
         "max / zero-load"],
        rows,
        title=(f"Latency distribution on {spec} | {message_kb} KB Shift"
               f" messages, {credit_txt}\n"
               f"zero-load cut-through latency = {zero_load:.2f} us"
               " (paper: ordered traffic keeps it)"),
    )


def main(argv=None) -> None:
    parser = make_parser(__doc__)
    parser.add_argument("--topo", default="n16-pgft")
    parser.add_argument("--message-kb", type=int, default=64)
    parser.add_argument("--credits", type=int, default=None)
    args = parser.parse_args(argv)
    print(run(topo=args.topo, message_kb=args.message_kb,
              credits=args.credits, seed=args.seed))


if __name__ == "__main__":
    main()
