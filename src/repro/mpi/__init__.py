"""Miniature MPI: data-correct collectives priced on the simulated fabric."""

from .communicator import (
    CollectiveResult,
    Communicator,
    DeliveryError,
    FaultMetrics,
    RetryPolicy,
)

__all__ = [
    "CollectiveResult",
    "Communicator",
    "DeliveryError",
    "FaultMetrics",
    "RetryPolicy",
]
