"""Miniature MPI: data-correct collectives priced on the simulated fabric."""

from .communicator import CollectiveResult, Communicator

__all__ = ["CollectiveResult", "Communicator"]
