"""A miniature MPI communicator over the simulated fabric.

Everything below ties the library together into the API an application
programmer would recognise: a :class:`Communicator` owns a rank
placement on a routed fabric and executes collectives *with real
data* -- each stage moves actual NumPy buffers between rank states --
while the fluid simulator prices the same stages on the network, so
every call returns both the numerically-correct result and the
simulated completion time.

Executors implement the classic algorithms surveyed in Table 1:

=============  =======================================================
collective     algorithms
=============  =======================================================
broadcast      ``binomial`` (small), ``scatter-allgather`` (large)
allgather      ``recursive-doubling`` (pow2), ``ring``, ``bruck``
allreduce      ``recursive-doubling`` (small), ``rabenseifner`` (large)
reduce         ``binomial`` (small), ``rabenseifner`` (large)
alltoall       ``pairwise`` (the displacement exchange)
barrier        ``dissemination``
=============  =======================================================

The data semantics follow the real implementations (chunks for the
scatter/allgather composites, halving/doubling for Rabenseifner); the
test suite checks each result against the NumPy one-liner it should
equal, for power-of-two and odd rank counts alike.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..collectives.nonpow2 import pow2_floor
from ..fabric.lft import ForwardingTables
from ..ordering.orders import topology_order
from ..sim.calibration import LinkCalibration, QDR_PCIE_GEN2
from ..sim.fluid import FluidSimulator

__all__ = ["Communicator", "CollectiveResult"]


@dataclass
class CollectiveResult:
    """Outcome of one collective call."""

    name: str
    algorithm: str
    values: list[np.ndarray] | None   # per-rank result (None for barrier)
    time_us: float
    num_stages: int
    bytes_on_wire: float

    def __repr__(self) -> str:
        return (f"CollectiveResult({self.name}/{self.algorithm}, "
                f"{self.num_stages} stages, {self.time_us:.2f} us)")


class _StageLedger:
    """Collects the (src_port, dst_port, bytes) messages of each stage
    for pricing by the fluid simulator."""

    def __init__(self, placement: np.ndarray):
        self.placement = placement
        self.stages: list[list[tuple[int, int, float]]] = []
        self._cur: list[tuple[int, int, float]] | None = None

    def begin(self) -> None:
        self._cur = []

    def send(self, src_rank: int, dst_rank: int, nbytes: float) -> None:
        if src_rank == dst_rank or nbytes <= 0:
            return
        self._cur.append((int(self.placement[src_rank]),
                          int(self.placement[dst_rank]), float(nbytes)))

    def commit(self) -> None:
        self.stages.append(self._cur)
        self._cur = None

    @property
    def total_bytes(self) -> float:
        return sum(b for st in self.stages for _, _, b in st)


class Communicator:
    """MPI-style collectives for ``len(placement)`` ranks."""

    def __init__(
        self,
        tables: ForwardingTables,
        placement: np.ndarray | None = None,
        calibration: LinkCalibration = QDR_PCIE_GEN2,
        simulate: bool = True,
    ):
        self.tables = tables
        self.cal = calibration
        self.simulate = simulate
        N = tables.fabric.num_endports
        self.placement = (np.asarray(placement, dtype=np.int64)
                          if placement is not None else topology_order(N))
        if len(np.unique(self.placement)) != len(self.placement):
            raise ValueError("placement maps two ranks to one end-port")
        self.size = len(self.placement)
        if self.size < 1:
            raise ValueError("communicator needs at least one rank")

    # ------------------------------------------------------------------
    def _price(self, ledger: _StageLedger) -> float:
        """Simulated time of the staged schedule (barrier-synchronous,
        matching blocking MPI collectives)."""
        if not self.simulate:
            return 0.0
        N = self.tables.fabric.num_endports
        # Per-stage aligned sequences: idle ports carry a zero-byte
        # self-message so barrier positions line up across ports.
        # (A rank sending twice in one stage -- never the case for the
        # implemented algorithms -- would be folded into one message.)
        seqs: list[list[tuple[int, float]]] = [[] for _ in range(N)]
        for stage in ledger.stages:
            senders: dict[int, tuple[int, float]] = {}
            for src, dst, nbytes in stage:
                if src in senders:
                    prev = senders[src]
                    senders[src] = (prev[0], prev[1] + nbytes)
                else:
                    senders[src] = (dst, nbytes)
            for p in range(N):
                seqs[p].append(senders.get(p, (p, 0.0)))
        res = FluidSimulator(self.tables, self.cal).run_sequences(
            seqs, mode="barrier")
        return res.makespan

    @staticmethod
    def _as_arrays(data) -> list[np.ndarray]:
        return [np.atleast_1d(np.asarray(d, dtype=np.float64)) for d in data]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range 0..{self.size - 1}")

    # ------------------------------------------------------------------
    # broadcast
    # ------------------------------------------------------------------
    def broadcast(self, data: np.ndarray, root: int = 0,
                  algorithm: str = "binomial") -> CollectiveResult:
        """Every rank receives ``data`` (held by ``root``)."""
        self._check_rank(root)
        buf = np.atleast_1d(np.asarray(data, dtype=np.float64))
        n = self.size
        ledger = _StageLedger(self.placement)

        if algorithm == "binomial":
            have = {root}
            values: list = [None] * n
            values[root] = buf.copy()
            # Relative binomial tree rooted at `root`.
            for s in range(max(1, math.ceil(math.log2(n))) if n > 1 else 0):
                ledger.begin()
                new = set()
                for i in list(have):
                    rel = (i - root) % n
                    if rel < (1 << s):
                        partner_rel = rel + (1 << s)
                        if partner_rel < n:
                            j = (root + partner_rel) % n
                            ledger.send(i, j, buf.nbytes)
                            values[j] = buf.copy()
                            new.add(j)
                have |= new
                ledger.commit()
        elif algorithm == "scatter-allgather":
            values = self._bcast_scatter_allgather(buf, root, ledger)
        else:
            raise ValueError(f"unknown broadcast algorithm {algorithm!r}")

        return CollectiveResult(
            name="broadcast", algorithm=algorithm, values=values,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    def _bcast_scatter_allgather(self, buf, root, ledger):
        n = self.size
        chunks = np.array_split(buf, n)
        # Binomial scatter of chunk ranges (relative to root).
        owned: list[set[int]] = [set() for _ in range(n)]
        owned[root] = set(range(n))
        levels = max(1, math.ceil(math.log2(n))) if n > 1 else 0
        for s in reversed(range(levels)):
            ledger.begin()
            for i in range(n):
                rel = (i - root) % n
                if rel % (1 << (s + 1)) == 0 and owned[i]:
                    partner_rel = rel + (1 << s)
                    if partner_rel < n:
                        j = (root + partner_rel) % n
                        give = {c for c in owned[i]
                                if (c - root) % n >= partner_rel}
                        if give:
                            nbytes = sum(chunks[c].nbytes for c in give)
                            ledger.send(i, j, nbytes)
                            owned[j] |= give
                            owned[i] -= give
            ledger.commit()
        # Ring allgather of the chunk ranges: each round every rank
        # forwards the range it received in the previous round.
        carry = [set(owned[i]) for i in range(n)]
        for _ in range(n - 1):
            ledger.begin()
            received: list[set] = [set()] * n
            for i in range(n):
                j = (i + 1) % n
                nbytes = sum(chunks[c].nbytes for c in carry[i])
                ledger.send(i, j, nbytes)
                received[j] = set(carry[i])
            for j in range(n):
                owned[j] |= received[j]
            carry = received
            ledger.commit()
        if not all(len(o) == n for o in owned):
            raise RuntimeError("allgather ring failed to cover all ranks")
        values = [np.concatenate([chunks[c] for c in range(n)])
                  for _ in range(n)]
        return values

    # ------------------------------------------------------------------
    # allgather
    # ------------------------------------------------------------------
    def allgather(self, data, algorithm: str = "auto") -> CollectiveResult:
        """Every rank ends with the concatenation of all contributions."""
        bufs = self._as_arrays(data)
        if len(bufs) != self.size:
            raise ValueError(f"need one buffer per rank ({self.size})")
        n = self.size
        if algorithm == "auto":
            algorithm = ("recursive-doubling" if n & (n - 1) == 0
                         else "ring")
        ledger = _StageLedger(self.placement)
        state: list[dict[int, np.ndarray]] = [{i: bufs[i]} for i in range(n)]

        if algorithm == "ring":
            # Each round every rank forwards the block it received in
            # the previous round (its own block in round one).
            carry = [{i: bufs[i]} for i in range(n)]
            for _ in range(n - 1):
                ledger.begin()
                received: list[dict] = [None] * n
                for i in range(n):
                    j = (i + 1) % n
                    nbytes = sum(v.nbytes for v in carry[i].values())
                    ledger.send(i, j, nbytes)
                    received[j] = dict(carry[i])
                for j in range(n):
                    state[j].update(received[j])
                carry = received
                ledger.commit()
        elif algorithm == "recursive-doubling":
            if n & (n - 1):
                raise ValueError("recursive-doubling allgather needs pow2")
            for s in range(int(math.log2(n))):
                ledger.begin()
                snapshot = [dict(st) for st in state]
                for i in range(n):
                    j = i ^ (1 << s)
                    nbytes = sum(v.nbytes for v in snapshot[i].values())
                    ledger.send(i, j, nbytes)
                    state[j].update(snapshot[i])
                ledger.commit()
        elif algorithm == "bruck":
            s = 0
            while (1 << s) < n:
                ledger.begin()
                snapshot = [dict(st) for st in state]
                for i in range(n):
                    j = (i + (1 << s)) % n
                    nbytes = sum(v.nbytes for v in snapshot[i].values())
                    ledger.send(i, j, nbytes)
                    state[j].update(snapshot[i])
                ledger.commit()
                s += 1
        else:
            raise ValueError(f"unknown allgather algorithm {algorithm!r}")

        values = [np.concatenate([st[k] for k in range(n)]) for st in state]
        return CollectiveResult(
            name="allgather", algorithm=algorithm, values=values,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    # ------------------------------------------------------------------
    # allreduce / reduce
    # ------------------------------------------------------------------
    def allreduce(self, data, op=np.add, algorithm: str = "auto"
                  ) -> CollectiveResult:
        """Element-wise reduction of all contributions, result everywhere."""
        bufs = self._as_arrays(data)
        if len(bufs) != self.size:
            raise ValueError(f"need one buffer per rank ({self.size})")
        n = self.size
        if algorithm == "auto":
            algorithm = ("rabenseifner"
                         if bufs[0].nbytes >= 4096 and n >= 4
                         else "recursive-doubling")
        ledger = _StageLedger(self.placement)

        if algorithm == "recursive-doubling":
            values = self._allreduce_rd(bufs, op, ledger)
        elif algorithm == "rabenseifner":
            values = self._allreduce_rabenseifner(bufs, op, ledger)
        else:
            raise ValueError(f"unknown allreduce algorithm {algorithm!r}")
        return CollectiveResult(
            name="allreduce", algorithm=algorithm, values=values,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    def _allreduce_rd(self, bufs, op, ledger):
        n = self.size
        p2 = pow2_floor(n)
        acc = [b.copy() for b in bufs]
        # pre: fold the remainder onto proxies.
        if p2 != n:
            ledger.begin()
            for i in range(n - p2):
                ledger.send(p2 + i, i, acc[p2 + i].nbytes)
                acc[i] = op(acc[i], acc[p2 + i])
            ledger.commit()
        for s in range(int(math.log2(p2))) if p2 > 1 else []:
            ledger.begin()
            snapshot = [a.copy() for a in acc[:p2]]
            for i in range(p2):
                j = i ^ (1 << s)
                ledger.send(i, j, snapshot[i].nbytes)
            for i in range(p2):
                acc[i] = op(acc[i], snapshot[i ^ (1 << s)])
            ledger.commit()
        if p2 != n:
            ledger.begin()
            for i in range(n - p2):
                ledger.send(i, p2 + i, acc[i].nbytes)
                acc[p2 + i] = acc[i].copy()
            ledger.commit()
        return acc

    def _allreduce_rabenseifner(self, bufs, op, ledger):
        n = self.size
        p2 = pow2_floor(n)
        acc = [b.copy() for b in bufs]
        if p2 != n:
            ledger.begin()
            for i in range(n - p2):
                ledger.send(p2 + i, i, acc[p2 + i].nbytes)
                acc[i] = op(acc[i], acc[p2 + i])
            ledger.commit()
        # Reduce-scatter by recursive halving over chunks.
        chunks = [np.array_split(acc[i], p2) for i in range(p2)]
        own = [set(range(p2)) for _ in range(p2)]
        levels = int(math.log2(p2)) if p2 > 1 else 0
        for s in reversed(range(levels)):
            ledger.begin()
            snapshot = [[c.copy() for c in chunks[i]] for i in range(p2)]
            for i in range(p2):
                j = i ^ (1 << s)
                keep = {c for c in own[i] if ((c >> s) & 1) == ((i >> s) & 1)}
                give = own[i] - keep
                nbytes = sum(snapshot[i][c].nbytes for c in give)
                ledger.send(i, j, nbytes)
                own[i] = keep
            for i in range(p2):
                j = i ^ (1 << s)
                for c in own[i]:
                    chunks[i][c] = op(chunks[i][c], snapshot[j][c])
            ledger.commit()
        # Allgather by recursive doubling.
        for s in range(levels):
            ledger.begin()
            snapshot = [[c.copy() for c in chunks[i]] for i in range(p2)]
            osnap = [set(o) for o in own]
            for i in range(p2):
                j = i ^ (1 << s)
                nbytes = sum(snapshot[i][c].nbytes for c in osnap[i])
                ledger.send(i, j, nbytes)
            for i in range(p2):
                j = i ^ (1 << s)
                for c in osnap[j]:
                    chunks[i][c] = snapshot[j][c]
                own[i] |= osnap[j]
            ledger.commit()
        result = [np.concatenate(chunks[i]) for i in range(p2)]
        acc = list(result) + acc[p2:]
        if p2 != n:
            ledger.begin()
            for i in range(n - p2):
                ledger.send(i, p2 + i, acc[i].nbytes)
                acc[p2 + i] = acc[i].copy()
            ledger.commit()
        return acc

    def reduce(self, data, root: int = 0, op=np.add) -> CollectiveResult:
        """Reduction to ``root`` by a (relative) binomial gather tree."""
        self._check_rank(root)
        bufs = self._as_arrays(data)
        if len(bufs) != self.size:
            raise ValueError(f"need one buffer per rank ({self.size})")
        n = self.size
        ledger = _StageLedger(self.placement)
        acc = {i: bufs[i].copy() for i in range(n)}
        levels = max(1, math.ceil(math.log2(n))) if n > 1 else 0
        for s in range(levels):
            ledger.begin()
            merged = []
            for i in range(n):
                rel = (i - root) % n
                if rel % (1 << (s + 1)) == (1 << s) and i in acc:
                    j = (root + rel - (1 << s)) % n
                    ledger.send(i, j, acc[i].nbytes)
                    merged.append((i, j))
            for i, j in merged:
                acc[j] = op(acc[j], acc.pop(i))
            ledger.commit()
        values = [acc[root] if r == root else None for r in range(n)]
        return CollectiveResult(
            name="reduce", algorithm="binomial", values=values,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    # ------------------------------------------------------------------
    # scatter / gather / scan
    # ------------------------------------------------------------------
    def scatter(self, data, root: int = 0) -> CollectiveResult:
        """Root distributes ``data[r]`` to each rank ``r`` down a
        (relative) binomial tree, halving the payload per level."""
        self._check_rank(root)
        bufs = self._as_arrays(data)
        n = self.size
        if len(bufs) != n:
            raise ValueError(f"need one buffer per rank ({n})")
        ledger = _StageLedger(self.placement)
        # holder of each chunk starts at root; ranges split binomially.
        owned: list[set[int]] = [set() for _ in range(n)]
        owned[root] = set(range(n))
        levels = max(1, math.ceil(math.log2(n))) if n > 1 else 0
        for s in reversed(range(levels)):
            ledger.begin()
            for i in range(n):
                rel = (i - root) % n
                if rel % (1 << (s + 1)) == 0 and owned[i]:
                    partner_rel = rel + (1 << s)
                    if partner_rel < n:
                        j = (root + partner_rel) % n
                        give = {c for c in owned[i]
                                if (c - root) % n >= partner_rel}
                        if give:
                            nbytes = sum(bufs[c].nbytes for c in give)
                            ledger.send(i, j, nbytes)
                            owned[j] |= give
                            owned[i] -= give
            ledger.commit()
        values = [bufs[r].copy() if r in owned[r] else None
                  for r in range(n)]
        if any(v is None for v in values):
            raise RuntimeError("scatter tree failed to cover all ranks")
        return CollectiveResult(
            name="scatter", algorithm="binomial", values=values,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    def gather(self, data, root: int = 0) -> CollectiveResult:
        """Inverse of scatter: root collects every rank's buffer up a
        binomial tree; ``values[root]`` is the concatenation."""
        self._check_rank(root)
        bufs = self._as_arrays(data)
        n = self.size
        if len(bufs) != n:
            raise ValueError(f"need one buffer per rank ({n})")
        ledger = _StageLedger(self.placement)
        held: dict[int, dict[int, np.ndarray]] = {
            i: {i: bufs[i].copy()} for i in range(n)
        }
        levels = max(1, math.ceil(math.log2(n))) if n > 1 else 0
        for s in range(levels):
            ledger.begin()
            moves = []
            for i in range(n):
                rel = (i - root) % n
                if rel % (1 << (s + 1)) == (1 << s) and i in held:
                    j = (root + rel - (1 << s)) % n
                    nbytes = sum(v.nbytes for v in held[i].values())
                    ledger.send(i, j, nbytes)
                    moves.append((i, j))
            for i, j in moves:
                held[j].update(held.pop(i))
            ledger.commit()
        gathered = np.concatenate([held[root][k] for k in range(n)])
        values = [gathered if r == root else None for r in range(n)]
        return CollectiveResult(
            name="gather", algorithm="binomial", values=values,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    def scan(self, data, op=np.add) -> CollectiveResult:
        """Inclusive prefix reduction: rank r ends with
        ``op(data[0], ..., data[r])`` (recursive-doubling scan)."""
        bufs = self._as_arrays(data)
        n = self.size
        if len(bufs) != n:
            raise ValueError(f"need one buffer per rank ({n})")
        ledger = _StageLedger(self.placement)
        acc = [b.copy() for b in bufs]
        s = 0
        while (1 << s) < n:
            ledger.begin()
            snapshot = [a.copy() for a in acc]
            for i in range(n - (1 << s)):
                # rank i sends its partial prefix to rank i + 2**s.
                ledger.send(i, i + (1 << s), snapshot[i].nbytes)
            for i in range(n - 1, (1 << s) - 1, -1):
                acc[i] = op(acc[i], snapshot[i - (1 << s)])
            ledger.commit()
            s += 1
        return CollectiveResult(
            name="scan", algorithm="recursive-doubling", values=acc,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    # ------------------------------------------------------------------
    # alltoall / barrier
    # ------------------------------------------------------------------
    def alltoall(self, data) -> CollectiveResult:
        """Personalised exchange: ``data[i][j]`` goes from rank i to j."""
        n = self.size
        matrix = [self._as_arrays(row) for row in data]
        if len(matrix) != n or any(len(row) != n for row in matrix):
            raise ValueError(f"need an {n}x{n} buffer matrix")
        ledger = _StageLedger(self.placement)
        out: list[list] = [[None] * n for _ in range(n)]
        for i in range(n):
            out[i][i] = matrix[i][i].copy()
        for s in range(1, n):
            ledger.begin()
            for i in range(n):
                j = (i + s) % n
                ledger.send(i, j, matrix[i][j].nbytes)
                out[j][i] = matrix[i][j].copy()
            ledger.commit()
        values = [np.concatenate(row) for row in out]
        return CollectiveResult(
            name="alltoall", algorithm="pairwise", values=values,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    def barrier(self) -> CollectiveResult:
        """Dissemination barrier (8-byte tokens)."""
        n = self.size
        ledger = _StageLedger(self.placement)
        s = 0
        while (1 << s) < n:
            ledger.begin()
            for i in range(n):
                ledger.send(i, (i + (1 << s)) % n, 8.0)
            ledger.commit()
            s += 1
        return CollectiveResult(
            name="barrier", algorithm="dissemination", values=None,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )
