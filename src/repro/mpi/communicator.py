"""A miniature MPI communicator over the simulated fabric.

Everything below ties the library together into the API an application
programmer would recognise: a :class:`Communicator` owns a rank
placement on a routed fabric and executes collectives *with real
data* -- each stage moves actual NumPy buffers between rank states --
while the fluid simulator prices the same stages on the network, so
every call returns both the numerically-correct result and the
simulated completion time.

Executors implement the classic algorithms surveyed in Table 1:

=============  =======================================================
collective     algorithms
=============  =======================================================
broadcast      ``binomial`` (small), ``scatter-allgather`` (large)
allgather      ``recursive-doubling`` (pow2), ``ring``, ``bruck``
allreduce      ``recursive-doubling`` (small), ``rabenseifner`` (large)
reduce         ``binomial`` (small), ``rabenseifner`` (large)
alltoall       ``pairwise`` (the displacement exchange)
barrier        ``dissemination``
=============  =======================================================

The data semantics follow the real implementations (chunks for the
scatter/allgather composites, halving/doubling for Rabenseifner); the
test suite checks each result against the NumPy one-liner it should
equal, for power-of-two and odd rank counts alike.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..collectives.nonpow2 import pow2_floor
from ..fabric.lft import ForwardingTables
from ..ordering.orders import topology_order
from ..sim.calibration import LinkCalibration, QDR_PCIE_GEN2
from ..sim.fluid import FluidSimulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.controller import HealingController, RepairAction
    from ..faults.schedule import FaultSchedule

__all__ = [
    "Communicator",
    "CollectiveResult",
    "DeliveryError",
    "FaultMetrics",
    "RetryPolicy",
]


@dataclass(frozen=True)
class RetryPolicy:
    """At-least-once delivery knobs for a faulty fabric.

    A sender that has not seen the ack for a message after
    ``ack_timeout`` microseconds retransmits it, waiting
    ``ack_timeout * backoff**k`` (plus seeded uniform jitter up to
    ``jitter`` of that value) before retry ``k``.  After
    ``max_retries`` retransmissions the message is declared
    undeliverable and the collective raises :class:`DeliveryError`.
    """

    max_retries: int = 8
    ack_timeout: float = 50.0     # us before a send is presumed lost
    backoff: float = 2.0          # exponential base between attempts
    jitter: float = 0.25          # fraction of the delay randomised
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Wait before retransmission number ``attempt`` (1-based)."""
        base = self.ack_timeout * self.backoff ** (attempt - 1)
        return base * (1.0 + self.jitter * float(rng.random()))


@dataclass(frozen=True)
class FaultMetrics:
    """What a collective endured on a faulty fabric.

    Attached to the communicator as ``last_faults`` after every
    collective priced under a fault schedule, and carried by
    :class:`DeliveryError` when delivery ultimately failed.
    """

    messages: int                 # unique fabric messages the schedule sent
    delivered: int                # of those, eventually acknowledged
    retransmissions: int          # extra send attempts beyond the first
    retry_rounds: int             # stages-with-retry iterations
    dropped_packets: int          # packets the fabric destroyed
    repairs: tuple["RepairAction", ...]
    time_us: float                # clock when the collective finished/gave up

    @property
    def delivered_fraction(self) -> float:
        return self.delivered / self.messages if self.messages else 1.0

    @property
    def recovery_latency(self) -> float:
        """Worst failure-to-repair latency observed (0 when no repairs)."""
        return max((r.recovery_latency for r in self.repairs), default=0.0)


class DeliveryError(RuntimeError):
    """A collective could not deliver every message.

    Raised only after the retry budget is exhausted; ``lost`` names the
    exact undeliverable ``(src_port, dst_port, stage)`` triples and
    ``metrics`` is the :class:`FaultMetrics` of the failed attempt, so
    there is never silent data loss.
    """

    def __init__(self, lost: tuple[tuple[int, int, int], ...],
                 metrics: FaultMetrics):
        self.lost = lost
        self.metrics = metrics
        head = ", ".join(f"({s}->{d} @stage {k})" for s, d, k in lost[:4])
        more = f" and {len(lost) - 4} more" if len(lost) > 4 else ""
        super().__init__(
            f"{len(lost)} undeliverable message(s) after retries: "
            f"{head}{more}")


@dataclass
class CollectiveResult:
    """Outcome of one collective call."""

    name: str
    algorithm: str
    values: list[np.ndarray] | None   # per-rank result (None for barrier)
    time_us: float
    num_stages: int
    bytes_on_wire: float

    def __repr__(self) -> str:
        return (f"CollectiveResult({self.name}/{self.algorithm}, "
                f"{self.num_stages} stages, {self.time_us:.2f} us)")


class _StageLedger:
    """Collects the (src_port, dst_port, bytes) messages of each stage
    for pricing by the fluid simulator."""

    def __init__(self, placement: np.ndarray):
        self.placement = placement
        self.stages: list[list[tuple[int, int, float]]] = []
        self._cur: list[tuple[int, int, float]] | None = None

    def begin(self) -> None:
        self._cur = []

    def send(self, src_rank: int, dst_rank: int, nbytes: float) -> None:
        if src_rank == dst_rank or nbytes <= 0:
            return
        self._cur.append((int(self.placement[src_rank]),
                          int(self.placement[dst_rank]), float(nbytes)))

    def commit(self) -> None:
        self.stages.append(self._cur)
        self._cur = None

    @property
    def total_bytes(self) -> float:
        return sum(b for st in self.stages for _, _, b in st)


class Communicator:
    """MPI-style collectives for ``len(placement)`` ranks."""

    def __init__(
        self,
        tables: ForwardingTables,
        placement: np.ndarray | None = None,
        calibration: LinkCalibration = QDR_PCIE_GEN2,
        simulate: bool = True,
        faults: "FaultSchedule | None" = None,
        retry: RetryPolicy | None = None,
        sweep_delay: float | None = None,
    ):
        self.tables = tables
        self.cal = calibration
        self.simulate = simulate
        N = tables.fabric.num_endports
        self.placement = (np.asarray(placement, dtype=np.int64)
                          if placement is not None else topology_order(N))
        if len(np.unique(self.placement)) != len(self.placement):
            raise ValueError("placement maps two ranks to one end-port")
        self.size = len(self.placement)
        if self.size < 1:
            raise ValueError("communicator needs at least one rank")
        if retry is not None and faults is None:
            raise ValueError("retry policy given without a fault schedule")
        if sweep_delay is not None and faults is None:
            raise ValueError("sweep_delay given without a fault schedule")
        self.faults = faults
        self.retry = retry if retry is not None else RetryPolicy()
        self.healing: "HealingController | None" = None
        if faults is not None and sweep_delay is not None:
            from ..faults.controller import HealingController

            self.healing = HealingController(
                tables, faults, sweep_delay=sweep_delay)
        # FaultMetrics of the most recent collective priced under a
        # fault schedule (None before any, or when faults is None).
        self.last_faults: FaultMetrics | None = None
        # Stage ledger of the most recent priced collective, kept so
        # batched frontends can replay the exact (src, dst, nbytes)
        # stages without re-deriving the algorithm's schedule.
        self.last_stages: list[list[tuple[int, int, float]]] | None = None

    # ------------------------------------------------------------------
    def _price(self, ledger: _StageLedger) -> float:
        """Simulated time of the staged schedule (barrier-synchronous,
        matching blocking MPI collectives)."""
        self.last_stages = [list(stage) for stage in ledger.stages]
        if not self.simulate:
            return 0.0
        if self.faults is not None:
            return self._price_faulty(ledger)
        N = self.tables.fabric.num_endports
        # Per-stage aligned sequences: idle ports carry a zero-byte
        # self-message so barrier positions line up across ports.
        # (A rank sending twice in one stage -- never the case for the
        # implemented algorithms -- would be folded into one message.)
        seqs: list[list[tuple[int, float]]] = [[] for _ in range(N)]
        for stage in ledger.stages:
            senders: dict[int, tuple[int, float]] = {}
            for src, dst, nbytes in stage:
                if src in senders:
                    prev = senders[src]
                    senders[src] = (prev[0], prev[1] + nbytes)
                else:
                    senders[src] = (dst, nbytes)
            for p in range(N):
                seqs[p].append(senders.get(p, (p, 0.0)))
        res = FluidSimulator(self.tables, self.cal).run_sequences(
            seqs, mode="barrier")
        return res.makespan

    def _price_faulty(self, ledger: _StageLedger) -> float:
        """Stage-by-stage packet pricing under the fault schedule with
        at-least-once delivery.

        Each stage's messages run through the fault-honoring reference
        packet engine at the current clock; messages the fabric lost are
        retransmitted after a seeded exponential-backoff delay until
        they land or the retry budget runs out, in which case
        :class:`DeliveryError` names the exact lost triples.  Sets
        ``self.last_faults`` either way.
        """
        from ..faults.packetsim import run_faulty
        from ..sim.packet import PacketSimulator

        assert self.faults is not None
        N = self.tables.fabric.num_endports
        sim = PacketSimulator(self.tables, self.cal, engine="reference")
        mask = 0xFFFFFFFF
        rng = np.random.default_rng(np.random.SeedSequence(
            [self.retry.seed & mask, self.faults.seed & mask]))
        clock = 0.0
        total = delivered = retrans = rounds = dropped = 0
        repairs: dict[float, "RepairAction"] = {}
        failed: list[tuple[int, int, int]] = []
        attempt_no = 0  # global attempt counter: unique rng stream per run

        for stage_idx, stage in enumerate(ledger.stages):
            # Fold multi-sends (never produced by the implemented
            # algorithms) the same way the fluid pricer does.
            pending: dict[int, tuple[int, float]] = {}
            for src, dst, nbytes in stage:
                if src == dst or nbytes <= 0:
                    continue
                if src in pending:
                    prev = pending[src]
                    pending[src] = (prev[0], prev[1] + nbytes)
                else:
                    pending[src] = (dst, nbytes)
            total += len(pending)
            if not pending:
                clock += self.cal.host_overhead  # empty (barrier) stage
                continue

            retry_k = 0
            while True:
                seqs: list[list[tuple[int, float]]] = [[] for _ in range(N)]
                for src in sorted(pending):
                    seqs[src].append(pending[src])
                _, rep = run_faulty(
                    sim, seqs, self.faults, self.healing,
                    t0=clock, attempt=attempt_no)
                attempt_no += 1
                dropped += rep.dropped_packets
                for act in rep.repairs:
                    repairs[act.sweep_time] = act
                clock = max(clock, rep.end)
                lost_now = {(lm.src, lm.dst) for lm in rep.lost}
                for src in sorted(pending):
                    if (src, pending[src][0]) not in lost_now:
                        del pending[src]
                        delivered += 1
                if not pending:
                    break
                if retry_k >= self.retry.max_retries:
                    failed.extend((src, pending[src][0], stage_idx)
                                  for src in sorted(pending))
                    break
                retry_k += 1
                rounds += 1
                retrans += len(pending)
                # The sender notices the loss at the ack timeout, then
                # backs off before retransmitting.
                clock += self.retry.delay(retry_k, rng)
            if failed:
                break  # terminal: later stages depend on this one

        # Repairs that landed between stage runs (or before the first
        # message even flew) never execute inside a run's event window,
        # so fold in every controller action up to the final clock.
        if self.healing is not None:
            for act in self.healing.actions:
                if act.sweep_time <= clock:
                    repairs[act.sweep_time] = act
        metrics = FaultMetrics(
            messages=total,
            delivered=delivered,
            retransmissions=retrans,
            retry_rounds=rounds,
            dropped_packets=dropped,
            repairs=tuple(repairs[t] for t in sorted(repairs)),
            time_us=clock,
        )
        self.last_faults = metrics
        if failed:
            raise DeliveryError(tuple(failed), metrics)
        return clock

    @staticmethod
    def _as_arrays(data) -> list[np.ndarray]:
        return [np.atleast_1d(np.asarray(d, dtype=np.float64)) for d in data]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range 0..{self.size - 1}")

    # ------------------------------------------------------------------
    # broadcast
    # ------------------------------------------------------------------
    def broadcast(self, data: np.ndarray, root: int = 0,
                  algorithm: str = "binomial") -> CollectiveResult:
        """Every rank receives ``data`` (held by ``root``)."""
        self._check_rank(root)
        buf = np.atleast_1d(np.asarray(data, dtype=np.float64))
        n = self.size
        ledger = _StageLedger(self.placement)

        if algorithm == "binomial":
            have = {root}
            values: list = [None] * n
            values[root] = buf.copy()
            # Relative binomial tree rooted at `root`.
            for s in range(max(1, math.ceil(math.log2(n))) if n > 1 else 0):
                ledger.begin()
                new = set()
                for i in list(have):
                    rel = (i - root) % n
                    if rel < (1 << s):
                        partner_rel = rel + (1 << s)
                        if partner_rel < n:
                            j = (root + partner_rel) % n
                            ledger.send(i, j, buf.nbytes)
                            values[j] = buf.copy()
                            new.add(j)
                have |= new
                ledger.commit()
        elif algorithm == "scatter-allgather":
            values = self._bcast_scatter_allgather(buf, root, ledger)
        else:
            raise ValueError(f"unknown broadcast algorithm {algorithm!r}")

        return CollectiveResult(
            name="broadcast", algorithm=algorithm, values=values,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    def _bcast_scatter_allgather(self, buf, root, ledger):
        n = self.size
        chunks = np.array_split(buf, n)
        # Binomial scatter of chunk ranges (relative to root).
        owned: list[set[int]] = [set() for _ in range(n)]
        owned[root] = set(range(n))
        levels = max(1, math.ceil(math.log2(n))) if n > 1 else 0
        for s in reversed(range(levels)):
            ledger.begin()
            for i in range(n):
                rel = (i - root) % n
                if rel % (1 << (s + 1)) == 0 and owned[i]:
                    partner_rel = rel + (1 << s)
                    if partner_rel < n:
                        j = (root + partner_rel) % n
                        give = {c for c in owned[i]
                                if (c - root) % n >= partner_rel}
                        if give:
                            nbytes = sum(chunks[c].nbytes for c in give)
                            ledger.send(i, j, nbytes)
                            owned[j] |= give
                            owned[i] -= give
            ledger.commit()
        # Ring allgather of the chunk ranges: each round every rank
        # forwards the range it received in the previous round.
        carry = [set(owned[i]) for i in range(n)]
        for _ in range(n - 1):
            ledger.begin()
            received: list[set] = [set()] * n
            for i in range(n):
                j = (i + 1) % n
                nbytes = sum(chunks[c].nbytes for c in carry[i])
                ledger.send(i, j, nbytes)
                received[j] = set(carry[i])
            for j in range(n):
                owned[j] |= received[j]
            carry = received
            ledger.commit()
        if not all(len(o) == n for o in owned):
            raise RuntimeError("allgather ring failed to cover all ranks")
        values = [np.concatenate([chunks[c] for c in range(n)])
                  for _ in range(n)]
        return values

    # ------------------------------------------------------------------
    # allgather
    # ------------------------------------------------------------------
    def allgather(self, data, algorithm: str = "auto") -> CollectiveResult:
        """Every rank ends with the concatenation of all contributions."""
        bufs = self._as_arrays(data)
        if len(bufs) != self.size:
            raise ValueError(f"need one buffer per rank ({self.size})")
        n = self.size
        if algorithm == "auto":
            algorithm = ("recursive-doubling" if n & (n - 1) == 0
                         else "ring")
        ledger = _StageLedger(self.placement)
        state: list[dict[int, np.ndarray]] = [{i: bufs[i]} for i in range(n)]

        if algorithm == "ring":
            # Each round every rank forwards the block it received in
            # the previous round (its own block in round one).
            carry = [{i: bufs[i]} for i in range(n)]
            for _ in range(n - 1):
                ledger.begin()
                received: list[dict] = [None] * n
                for i in range(n):
                    j = (i + 1) % n
                    nbytes = sum(carry[i][k].nbytes for k in sorted(carry[i]))
                    ledger.send(i, j, nbytes)
                    received[j] = dict(carry[i])
                for j in range(n):
                    state[j].update(received[j])
                carry = received
                ledger.commit()
        elif algorithm == "recursive-doubling":
            if n & (n - 1):
                raise ValueError("recursive-doubling allgather needs pow2")
            for s in range(int(math.log2(n))):
                ledger.begin()
                snapshot = [dict(st) for st in state]
                for i in range(n):
                    j = i ^ (1 << s)
                    nbytes = sum(snapshot[i][k].nbytes for k in sorted(snapshot[i]))
                    ledger.send(i, j, nbytes)
                    state[j].update(snapshot[i])
                ledger.commit()
        elif algorithm == "bruck":
            s = 0
            while (1 << s) < n:
                ledger.begin()
                snapshot = [dict(st) for st in state]
                for i in range(n):
                    j = (i + (1 << s)) % n
                    nbytes = sum(snapshot[i][k].nbytes for k in sorted(snapshot[i]))
                    ledger.send(i, j, nbytes)
                    state[j].update(snapshot[i])
                ledger.commit()
                s += 1
        else:
            raise ValueError(f"unknown allgather algorithm {algorithm!r}")

        values = [np.concatenate([st[k] for k in range(n)]) for st in state]
        return CollectiveResult(
            name="allgather", algorithm=algorithm, values=values,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    # ------------------------------------------------------------------
    # allreduce / reduce
    # ------------------------------------------------------------------
    def allreduce(self, data, op=np.add, algorithm: str = "auto"
                  ) -> CollectiveResult:
        """Element-wise reduction of all contributions, result everywhere."""
        bufs = self._as_arrays(data)
        if len(bufs) != self.size:
            raise ValueError(f"need one buffer per rank ({self.size})")
        n = self.size
        if algorithm == "auto":
            algorithm = ("rabenseifner"
                         if bufs[0].nbytes >= 4096 and n >= 4
                         else "recursive-doubling")
        ledger = _StageLedger(self.placement)

        if algorithm == "recursive-doubling":
            values = self._allreduce_rd(bufs, op, ledger)
        elif algorithm == "rabenseifner":
            values = self._allreduce_rabenseifner(bufs, op, ledger)
        else:
            raise ValueError(f"unknown allreduce algorithm {algorithm!r}")
        return CollectiveResult(
            name="allreduce", algorithm=algorithm, values=values,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    def _allreduce_rd(self, bufs, op, ledger):
        n = self.size
        p2 = pow2_floor(n)
        acc = [b.copy() for b in bufs]
        # pre: fold the remainder onto proxies.
        if p2 != n:
            ledger.begin()
            for i in range(n - p2):
                ledger.send(p2 + i, i, acc[p2 + i].nbytes)
                acc[i] = op(acc[i], acc[p2 + i])
            ledger.commit()
        for s in range(int(math.log2(p2))) if p2 > 1 else []:
            ledger.begin()
            snapshot = [a.copy() for a in acc[:p2]]
            for i in range(p2):
                j = i ^ (1 << s)
                ledger.send(i, j, snapshot[i].nbytes)
            for i in range(p2):
                acc[i] = op(acc[i], snapshot[i ^ (1 << s)])
            ledger.commit()
        if p2 != n:
            ledger.begin()
            for i in range(n - p2):
                ledger.send(i, p2 + i, acc[i].nbytes)
                acc[p2 + i] = acc[i].copy()
            ledger.commit()
        return acc

    def _allreduce_rabenseifner(self, bufs, op, ledger):
        n = self.size
        p2 = pow2_floor(n)
        acc = [b.copy() for b in bufs]
        if p2 != n:
            ledger.begin()
            for i in range(n - p2):
                ledger.send(p2 + i, i, acc[p2 + i].nbytes)
                acc[i] = op(acc[i], acc[p2 + i])
            ledger.commit()
        # Reduce-scatter by recursive halving over chunks.
        chunks = [np.array_split(acc[i], p2) for i in range(p2)]
        own = [set(range(p2)) for _ in range(p2)]
        levels = int(math.log2(p2)) if p2 > 1 else 0
        for s in reversed(range(levels)):
            ledger.begin()
            snapshot = [[c.copy() for c in chunks[i]] for i in range(p2)]
            for i in range(p2):
                j = i ^ (1 << s)
                keep = {c for c in own[i] if ((c >> s) & 1) == ((i >> s) & 1)}
                give = own[i] - keep
                nbytes = sum(snapshot[i][c].nbytes for c in give)
                ledger.send(i, j, nbytes)
                own[i] = keep
            for i in range(p2):
                j = i ^ (1 << s)
                for c in own[i]:
                    chunks[i][c] = op(chunks[i][c], snapshot[j][c])
            ledger.commit()
        # Allgather by recursive doubling.
        for s in range(levels):
            ledger.begin()
            snapshot = [[c.copy() for c in chunks[i]] for i in range(p2)]
            osnap = [set(o) for o in own]
            for i in range(p2):
                j = i ^ (1 << s)
                nbytes = sum(snapshot[i][c].nbytes for c in osnap[i])
                ledger.send(i, j, nbytes)
            for i in range(p2):
                j = i ^ (1 << s)
                for c in osnap[j]:
                    chunks[i][c] = snapshot[j][c]
                own[i] |= osnap[j]
            ledger.commit()
        result = [np.concatenate(chunks[i]) for i in range(p2)]
        acc = list(result) + acc[p2:]
        if p2 != n:
            ledger.begin()
            for i in range(n - p2):
                ledger.send(i, p2 + i, acc[i].nbytes)
                acc[p2 + i] = acc[i].copy()
            ledger.commit()
        return acc

    def reduce(self, data, root: int = 0, op=np.add) -> CollectiveResult:
        """Reduction to ``root`` by a (relative) binomial gather tree."""
        self._check_rank(root)
        bufs = self._as_arrays(data)
        if len(bufs) != self.size:
            raise ValueError(f"need one buffer per rank ({self.size})")
        n = self.size
        ledger = _StageLedger(self.placement)
        acc = {i: bufs[i].copy() for i in range(n)}
        levels = max(1, math.ceil(math.log2(n))) if n > 1 else 0
        for s in range(levels):
            ledger.begin()
            merged = []
            for i in range(n):
                rel = (i - root) % n
                if rel % (1 << (s + 1)) == (1 << s) and i in acc:
                    j = (root + rel - (1 << s)) % n
                    ledger.send(i, j, acc[i].nbytes)
                    merged.append((i, j))
            for i, j in merged:
                acc[j] = op(acc[j], acc.pop(i))
            ledger.commit()
        values = [acc[root] if r == root else None for r in range(n)]
        return CollectiveResult(
            name="reduce", algorithm="binomial", values=values,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    # ------------------------------------------------------------------
    # scatter / gather / scan
    # ------------------------------------------------------------------
    def scatter(self, data, root: int = 0) -> CollectiveResult:
        """Root distributes ``data[r]`` to each rank ``r`` down a
        (relative) binomial tree, halving the payload per level."""
        self._check_rank(root)
        bufs = self._as_arrays(data)
        n = self.size
        if len(bufs) != n:
            raise ValueError(f"need one buffer per rank ({n})")
        ledger = _StageLedger(self.placement)
        # holder of each chunk starts at root; ranges split binomially.
        owned: list[set[int]] = [set() for _ in range(n)]
        owned[root] = set(range(n))
        levels = max(1, math.ceil(math.log2(n))) if n > 1 else 0
        for s in reversed(range(levels)):
            ledger.begin()
            for i in range(n):
                rel = (i - root) % n
                if rel % (1 << (s + 1)) == 0 and owned[i]:
                    partner_rel = rel + (1 << s)
                    if partner_rel < n:
                        j = (root + partner_rel) % n
                        give = {c for c in owned[i]
                                if (c - root) % n >= partner_rel}
                        if give:
                            nbytes = sum(bufs[c].nbytes for c in give)
                            ledger.send(i, j, nbytes)
                            owned[j] |= give
                            owned[i] -= give
            ledger.commit()
        values = [bufs[r].copy() if r in owned[r] else None
                  for r in range(n)]
        if any(v is None for v in values):
            raise RuntimeError("scatter tree failed to cover all ranks")
        return CollectiveResult(
            name="scatter", algorithm="binomial", values=values,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    def gather(self, data, root: int = 0) -> CollectiveResult:
        """Inverse of scatter: root collects every rank's buffer up a
        binomial tree; ``values[root]`` is the concatenation."""
        self._check_rank(root)
        bufs = self._as_arrays(data)
        n = self.size
        if len(bufs) != n:
            raise ValueError(f"need one buffer per rank ({n})")
        ledger = _StageLedger(self.placement)
        held: dict[int, dict[int, np.ndarray]] = {
            i: {i: bufs[i].copy()} for i in range(n)
        }
        levels = max(1, math.ceil(math.log2(n))) if n > 1 else 0
        for s in range(levels):
            ledger.begin()
            moves = []
            for i in range(n):
                rel = (i - root) % n
                if rel % (1 << (s + 1)) == (1 << s) and i in held:
                    j = (root + rel - (1 << s)) % n
                    nbytes = sum(held[i][k].nbytes for k in sorted(held[i]))
                    ledger.send(i, j, nbytes)
                    moves.append((i, j))
            for i, j in moves:
                held[j].update(held.pop(i))
            ledger.commit()
        gathered = np.concatenate([held[root][k] for k in range(n)])
        values = [gathered if r == root else None for r in range(n)]
        return CollectiveResult(
            name="gather", algorithm="binomial", values=values,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    def scan(self, data, op=np.add) -> CollectiveResult:
        """Inclusive prefix reduction: rank r ends with
        ``op(data[0], ..., data[r])`` (recursive-doubling scan)."""
        bufs = self._as_arrays(data)
        n = self.size
        if len(bufs) != n:
            raise ValueError(f"need one buffer per rank ({n})")
        ledger = _StageLedger(self.placement)
        acc = [b.copy() for b in bufs]
        s = 0
        while (1 << s) < n:
            ledger.begin()
            snapshot = [a.copy() for a in acc]
            for i in range(n - (1 << s)):
                # rank i sends its partial prefix to rank i + 2**s.
                ledger.send(i, i + (1 << s), snapshot[i].nbytes)
            for i in range(n - 1, (1 << s) - 1, -1):
                acc[i] = op(acc[i], snapshot[i - (1 << s)])
            ledger.commit()
            s += 1
        return CollectiveResult(
            name="scan", algorithm="recursive-doubling", values=acc,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    # ------------------------------------------------------------------
    # alltoall / barrier
    # ------------------------------------------------------------------
    def alltoall(self, data) -> CollectiveResult:
        """Personalised exchange: ``data[i][j]`` goes from rank i to j."""
        n = self.size
        matrix = [self._as_arrays(row) for row in data]
        if len(matrix) != n or any(len(row) != n for row in matrix):
            raise ValueError(f"need an {n}x{n} buffer matrix")
        ledger = _StageLedger(self.placement)
        out: list[list] = [[None] * n for _ in range(n)]
        for i in range(n):
            out[i][i] = matrix[i][i].copy()
        for s in range(1, n):
            ledger.begin()
            for i in range(n):
                j = (i + s) % n
                ledger.send(i, j, matrix[i][j].nbytes)
                out[j][i] = matrix[i][j].copy()
            ledger.commit()
        values = [np.concatenate(row) for row in out]
        return CollectiveResult(
            name="alltoall", algorithm="pairwise", values=values,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )

    def barrier(self) -> CollectiveResult:
        """Dissemination barrier (8-byte tokens)."""
        n = self.size
        ledger = _StageLedger(self.placement)
        s = 0
        while (1 << s) < n:
            ledger.begin()
            for i in range(n):
                ledger.send(i, (i + (1 << s)) % n, 8.0)
            ledger.commit()
            s += 1
        return CollectiveResult(
            name="barrier", algorithm="dissemination", values=None,
            time_us=self._price(ledger), num_stages=len(ledger.stages),
            bytes_on_wire=ledger.total_bytes,
        )
