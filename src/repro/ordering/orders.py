"""MPI node orderings (rank -> end-port placements).

The paper's central knob besides routing: *where* each MPI rank sits.
A placement is a vector ``rank_to_port`` with ``rank_to_port[r]`` the
end-port index of rank ``r`` (end-port indices are the RLFT topology
order -- leaf-switch major, host minor).

* :func:`topology_order` -- the paper's proposal: rank ``r`` on
  end-port ``r`` (identity / "routing order" in Fig. 1b).  For partial
  jobs, ranks fill the active ports in ascending index order.
* :func:`random_order` -- uniformly random placement (the measured
  ~40 % bandwidth-loss regime of [2]).
* :func:`random_subset` -- a partial job: choose active ports at
  random, then place ranks randomly on them ("Cont.-X" rows of
  Table 3 exclude X random nodes).
* :func:`topology_subset` -- partial job on randomly chosen ports but
  with topology-ordered ranks (the paper's partially-populated result:
  D-Mod-K keeps HSD = 1).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "topology_order",
    "random_order",
    "random_subset",
    "topology_subset",
    "physical_placement",
    "invert_placement",
]


def topology_order(num_endports: int, num_ranks: int | None = None) -> np.ndarray:
    """Rank ``r`` on end-port ``r`` (first ``num_ranks`` ports)."""
    n = num_endports if num_ranks is None else num_ranks
    if n > num_endports:
        raise ValueError(f"{n} ranks do not fit {num_endports} end-ports")
    return np.arange(n, dtype=np.int64)


def random_order(num_endports: int, num_ranks: int | None = None,
                 seed: int | np.random.Generator = 0) -> np.ndarray:
    """Uniformly random placement of ``num_ranks`` ranks on the fabric."""
    rng = np.random.default_rng(seed)
    n = num_endports if num_ranks is None else num_ranks
    if n > num_endports:
        raise ValueError(f"{n} ranks do not fit {num_endports} end-ports")
    return rng.permutation(num_endports)[:n].astype(np.int64)


def random_subset(num_endports: int, excluded: int,
                  seed: int | np.random.Generator = 0) -> np.ndarray:
    """Random placement on a random subset: ``excluded`` ports idle.

    Matches the paper's partial-tree generation: "randomly selecting a
    set of nodes excluded from the communication", with the surviving
    ranks also randomly ordered.
    """
    rng = np.random.default_rng(seed)
    ports = rng.permutation(num_endports)[: num_endports - excluded]
    return rng.permutation(ports).astype(np.int64)


def topology_subset(num_endports: int, excluded: int,
                    seed: int | np.random.Generator = 0) -> np.ndarray:
    """Topology-ordered ranks on a random subset of active ports.

    The paper's proposal applied to a partially-populated tree: the
    active end-ports keep their fabric order; ranks are dense.
    """
    rng = np.random.default_rng(seed)
    ports = rng.permutation(num_endports)[: num_endports - excluded]
    return np.sort(ports).astype(np.int64)


def physical_placement(active: np.ndarray, num_endports: int) -> np.ndarray:
    """The paper's partial-tree semantics: CPS slots ARE physical
    end-port positions; excluded ports hold ``-1`` and their flows are
    skipped.

    Use with a CPS generated for the *full* fabric size.  Section VI:
    "the number of stages used does not reflect the actual number of
    the used end-ports but the number of leaf switches they occupy" --
    traffic stays a subset of the full-population pattern, so D-Mod-K
    keeps HSD = 1 for arbitrary exclusions.
    """
    active = np.asarray(active, dtype=np.int64)
    slots = np.full(num_endports, -1, dtype=np.int64)
    slots[active] = active
    return slots


def invert_placement(rank_to_port: np.ndarray, num_endports: int) -> np.ndarray:
    """``port_to_rank`` vector; idle ports hold ``-1``."""
    inv = np.full(num_endports, -1, dtype=np.int64)
    inv[np.asarray(rank_to_port)] = np.arange(len(rank_to_port))
    return inv
