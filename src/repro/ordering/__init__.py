"""MPI rank -> end-port placements: topology-aware, random, adversarial."""

from .adversarial import adversarial_ring_order, ring_successor_permutation
from .orders import (
    invert_placement,
    physical_placement,
    random_order,
    random_subset,
    topology_order,
    topology_subset,
)
from .policies import block_order, cyclic_order, policy_order

__all__ = [
    "adversarial_ring_order",
    "block_order",
    "cyclic_order",
    "invert_placement",
    "physical_placement",
    "policy_order",
    "random_order",
    "random_subset",
    "ring_successor_permutation",
    "topology_order",
    "topology_subset",
]
