"""Scheduler placement policies: block, cyclic, and plane-cyclic.

Batch schedulers expose distribution policies for mapping ranks onto
the nodes of an allocation; the two classic ones are

* **block** -- fill each node (here: leaf switch) before moving on;
  this is exactly the paper's topology order when the allocation is in
  fabric order;
* **cyclic** -- deal ranks round-robin across leaves (``rank r`` on
  leaf ``r mod L``).

A finding beyond the paper (verified in the test suite): cyclic
placement is the *transpose* of the topology order, and D-Mod-K's
modular spreading survives transposition -- a leaf's sources target
stride-unit destinations, which still fan out over distinct up-ports.
Both classic scheduler policies are therefore congestion-free on
constant-CBB trees; the bandwidth collapse the paper measures needs an
*unstructured* (random/adversarial) placement.
"""

from __future__ import annotations

import numpy as np

from ..topology.spec import PGFTSpec

__all__ = ["block_order", "cyclic_order", "policy_order"]


def block_order(spec: PGFTSpec, num_ranks: int | None = None) -> np.ndarray:
    """Leaf-major fill: identical to the paper's topology order."""
    n = spec.num_endports if num_ranks is None else num_ranks
    _check(spec, n)
    return np.arange(n, dtype=np.int64)


def cyclic_order(spec: PGFTSpec, num_ranks: int | None = None,
                 level: int = 1) -> np.ndarray:
    """Round-robin ranks across level-``level`` sub-trees.

    Rank ``r`` goes to sub-tree ``r mod B`` at offset ``r // B`` where
    ``B`` is the sub-tree count; with ``level=1`` this is the classic
    per-leaf cyclic distribution.
    """
    n = spec.num_endports if num_ranks is None else num_ranks
    _check(spec, n)
    unit = spec.M(level)          # end-ports per sub-tree
    blocks = spec.num_endports // unit
    r = np.arange(n, dtype=np.int64)
    return (r % blocks) * unit + r // blocks


def policy_order(spec: PGFTSpec, policy: str,
                 num_ranks: int | None = None) -> np.ndarray:
    """Dispatch by scheduler policy name (``block`` | ``cyclic``)."""
    if policy == "block":
        return block_order(spec, num_ranks)
    if policy == "cyclic":
        return cyclic_order(spec, num_ranks)
    raise ValueError(f"unknown placement policy {policy!r}")


def _check(spec: PGFTSpec, n: int) -> None:
    if n < 1 or n > spec.num_endports:
        raise ValueError(
            f"{n} ranks do not fit {spec.num_endports} end-ports"
        )
