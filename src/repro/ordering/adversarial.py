"""Adversarial node ordering for the Ring permutation (paper section II).

The paper measures a 92.9 % bandwidth collapse by choosing a node order
such that, for a Ring permutation (every rank sends to the next one),
"all of the nodes of each leaf switch send data to nodes of other leaf
switches [and] for each leaf switch all flows congest on a single
up-going port".

Construction (for D-Mod-K-routed RLFTs, where the leaf up-port toward
destination end-port ``j`` is ``j mod m_1``):

1. pick one *residue class* ``c_b`` per leaf ``b``; destinations with
   index ``≡ c_b (mod m_1)`` all leave leaf ``b`` through up-port
   ``c_b``;
2. assign each leaf a set ``S_b`` of ``m_1`` *other* leaves so that the
   successor map ``(b, t) -> (S_b[t], c_b)`` is a permutation of all
   end-ports (each port has exactly one predecessor);
3. read the permutation's cycles off as the rank order: consecutive
   ranks sit on successive ports of the map, so the Ring stage realises
   it (cycle stitch points lose one congested flow each, a vanishing
   fraction).

With ``L`` leaves of ``m`` hosts this drives ``m`` (or ``m-1`` when
``L == m``) flows onto a single up link per leaf -- the paper's
worst-case oversubscription of 18 on 36-port-switch fabrics.
"""

from __future__ import annotations

import numpy as np

from ..topology.spec import PGFTSpec

__all__ = ["adversarial_ring_order", "ring_successor_permutation"]


def ring_successor_permutation(spec: PGFTSpec) -> np.ndarray:
    """The adversarial successor map ``succ[port] -> port`` (step 1-2)."""
    if spec.h < 2:
        raise ValueError("adversarial ordering needs at least 2 levels")
    m = spec.m[0]
    N = spec.num_endports
    L = N // m
    if L < 2:
        raise ValueError("need at least two leaf switches")

    succ = np.full(N, -1, dtype=np.int64)
    if L % m == 0 and L // m >= 1:
        g = L // m
        for c in range(m):
            members = np.arange(c, L, m)  # leaves with residue class c
            if len(members) != g:
                raise RuntimeError("residue class size mismatch")
            for i, b in enumerate(members):
                # Chunk of m leaves, rotated by one chunk to avoid b itself
                # (impossible only when g == 1, where one self-flow remains).
                chunk = (np.arange(m) + ((i + 1) % g) * m) % L
                succ[b * m + np.arange(m)] = chunk * m + c
    else:
        # General fallback: greedy residue assignment. Each leaf b uses
        # residue c_b = b % m and takes the next m unclaimed leaves of
        # that residue's column, preferring leaves != b.
        claimed = np.zeros((L, m), dtype=bool)  # (leaf, residue) ports taken
        for b in range(L):
            c = b % m
            order = np.argsort((np.arange(L) == b))  # others first
            free = [l for l in order if not claimed[l, c]]
            take = free[:m]
            if len(take) < m:
                raise ValueError("cannot build adversarial order for this shape")
            for t, l in enumerate(take):
                claimed[l, c] = True
                succ[b * m + t] = l * m + c
    if (succ < 0).any() or len(np.unique(succ)) != N:
        raise RuntimeError("successor map is not a permutation")
    return succ


def adversarial_ring_order(spec: PGFTSpec) -> np.ndarray:
    """Rank placement realising the adversarial Ring traffic (step 3).

    Returns ``rank_to_port`` of length ``N``: walking the successor
    permutation cycle by cycle, so that rank ``r+1`` sits on
    ``succ[port(r)]`` except where two cycles are stitched together.
    """
    succ = ring_successor_permutation(spec)
    N = len(succ)
    visited = np.zeros(N, dtype=bool)
    order: list[int] = []
    for start in range(N):
        if visited[start]:
            continue
        cur = start
        while not visited[cur]:
            visited[cur] = True
            order.append(cur)
            cur = int(succ[cur])
    return np.asarray(order, dtype=np.int64)
